"""Flight recorder: schema round-trip, no-op discipline, ATE fidelity."""

import json
import math

import numpy as np
import pytest

from repro.core import SplatonicConfig
from repro.datasets import make_replica_sequence
from repro.obs.flight import (FLIGHT_SCHEMA_VERSION, FlightRecorder,
                              aligned_frame_errors, parse_flight_records,
                              read_flight_record, to_plain)
from repro.obs.health import HealthMonitor
from repro.slam import SLAMSystem


@pytest.fixture(scope="module")
def sequence():
    return make_replica_sequence("room0", n_frames=4, width=32, height=24,
                                 surface_density=10)


@pytest.fixture(scope="module")
def recorded_run(sequence, tmp_path_factory):
    """One 4-frame run with the recorder on: (result, monitor, jsonl path)."""
    path = str(tmp_path_factory.mktemp("flight") / "run.jsonl")
    rec = FlightRecorder()
    rec.enable(path)
    mon = HealthMonitor()
    result = SLAMSystem(
        "splatam", mode="sparse",
        splatonic_config=SplatonicConfig(tracking_tile=8)).run(
            sequence, flight=rec, health=mon)
    rec.disable()
    return result, mon, path


class TestToPlain:
    def test_passthrough_scalars(self):
        assert to_plain(3) == 3
        assert to_plain(0.5) == 0.5
        assert to_plain(True) is True
        assert to_plain(None) is None
        assert to_plain("x") == "x"

    def test_numpy_values_become_json_native(self):
        plain = to_plain({"a": np.float64(1.5), "b": np.arange(3),
                          "c": [np.int32(2)], "d": np.eye(2)})
        assert plain == {"a": 1.5, "b": [0, 1, 2], "c": [2],
                         "d": [[1.0, 0.0], [0.0, 1.0]]}
        json.dumps(plain)  # must be serializable as-is

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "<odd>"
        assert to_plain(Odd()) == "<odd>"


class TestRecorderLifecycle:
    def test_disabled_emit_is_noop(self):
        rec = FlightRecorder()
        assert not rec.enabled
        rec.emit({"type": "frame", "frame": 0})
        rec.begin_run(algorithm="splatam")
        assert rec.records == []

    def test_enable_disable_roundtrip(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        rec = FlightRecorder()
        rec.enable(path)
        rec.begin_run(algorithm="x", mode="sparse")
        rec.emit({"type": "frame", "frame": 0})
        rec.disable()
        assert not rec.enabled
        log = read_flight_record(path)
        assert log.header["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert log.header["algorithm"] == "x"
        assert log.num_frames == 1

    def test_record_to_restores_state(self, tmp_path):
        rec = FlightRecorder()
        with rec.record_to(str(tmp_path / "r.jsonl")):
            assert rec.enabled
            rec.emit({"type": "frame", "frame": 0})
        assert not rec.enabled
        assert len(rec.records) == 1

    def test_header_carries_environment_fingerprint(self, tmp_path):
        rec = FlightRecorder()
        rec.enable(str(tmp_path / "r.jsonl"))
        rec.begin_run()
        rec.disable()
        env = rec.records[0]["environment"]
        assert "python" in env and "numpy" in env

    def test_write_jsonl_exports_accumulated(self, tmp_path):
        rec = FlightRecorder()
        rec.enable()  # in-memory only
        rec.begin_run(algorithm="x")
        rec.emit({"type": "frame", "frame": 0})
        out = str(tmp_path / "dump.jsonl")
        assert rec.write_jsonl(out) == 2
        assert read_flight_record(out).num_frames == 1


class TestParsing:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_flight_records([])

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_flight_records([{"type": "frame", "frame": 0}])

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            parse_flight_records([{"type": "header", "schema_version": 999}])

    def test_out_of_order_frames_rejected(self):
        records = [
            {"type": "header", "schema_version": FLIGHT_SCHEMA_VERSION},
            {"type": "frame", "frame": 1},
            {"type": "frame", "frame": 0},
        ]
        with pytest.raises(ValueError, match="order"):
            parse_flight_records(records)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema_version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_flight_record(str(path))


class TestRunRoundTrip:
    def test_one_record_per_frame_plus_header_and_summary(self, sequence,
                                                          recorded_run):
        _, _, path = recorded_run
        log = read_flight_record(path)
        assert log.num_frames == len(sequence)
        assert [f["frame"] for f in log.frames] == list(range(len(sequence)))
        assert log.summary is not None
        assert log.header["algorithm"] == "splatam"
        assert log.header["mode"] == "sparse"
        assert log.header["width"] == 32 and log.header["height"] == 24

    def test_stream_is_valid_jsonl(self, recorded_run):
        _, _, path = recorded_run
        with open(path) as f:
            lines = [json.loads(line) for line in f if line.strip()]
        assert lines[0]["type"] == "header"
        assert lines[-1]["type"] == "summary"
        assert all(r["type"] == "frame" for r in lines[1:-1])

    def test_summary_ate_matches_result(self, recorded_run):
        result, _, path = recorded_run
        log = read_flight_record(path)
        ate = result.ate()
        assert log.summary["ate"]["rmse"] == pytest.approx(ate.rmse,
                                                           rel=1e-12)
        per_frame = log.summary["ate"]["per_frame"]
        assert len(per_frame) == log.num_frames
        rmse = math.sqrt(sum(e * e for e in per_frame) / len(per_frame))
        assert rmse == pytest.approx(ate.rmse, rel=1e-12)

    def test_frame_records_carry_the_advertised_channels(self, recorded_run):
        _, _, path = recorded_run
        log = read_flight_record(path)
        tracked = log.frames[1]  # frame 0 is bootstrap-only
        assert tracked["tracking"]["iterations"] >= 1
        assert tracked["tracking"]["sampled_pixels"] > 0
        curve = tracked["tracking"]["loss_curve"]
        assert len(curve) == tracked["tracking"]["iterations"]
        assert tracked["gaussians"] > 0
        assert 0.0 <= tracked["alpha"]["rejection_rate"] <= 1.0
        assert "keyframe" in tracked and "counters" in tracked
        mapped = log.frames[0]  # bootstrap mapping
        assert mapped["mapping"]["invoked"]
        assert "unseen_coverage" in mapped["mapping"]["sampling"]

    def test_series_accessor(self, recorded_run):
        _, _, path = recorded_run
        log = read_flight_record(path)
        gaussians = log.series("gaussians")
        assert len(gaussians) == log.num_frames
        assert all(isinstance(g, int) for g in gaussians)
        # Missing dotted paths yield None, not KeyError.
        assert log.series("no.such.path") == [None] * log.num_frames

    def test_healthy_run_raises_no_alerts(self, recorded_run):
        _, monitor, path = recorded_run
        assert monitor.alerts == []
        assert read_flight_record(path).alerts() == []

    def test_run_without_recorder_emits_nothing(self, sequence):
        from repro.obs import flight as obs_flight
        before = len(obs_flight.recorder.records)
        SLAMSystem(
            "splatam", mode="sparse",
            splatonic_config=SplatonicConfig(tracking_tile=8)).run(sequence)
        assert len(obs_flight.recorder.records) == before
        assert not obs_flight.recorder.enabled


class TestAlignedFrameErrors:
    def test_identity_trajectories_have_zero_error(self):
        rng = np.random.default_rng(0)
        traj = np.tile(np.eye(4), (5, 1, 1))
        traj[:, :3, 3] = rng.normal(size=(5, 3))
        errors = aligned_frame_errors(traj, traj)
        assert errors == pytest.approx([0.0] * 5, abs=1e-12)

    def test_reproduces_ate_rmse(self):
        from repro.metrics.ate import ate_rmse
        rng = np.random.default_rng(1)
        gt = np.tile(np.eye(4), (6, 1, 1))
        gt[:, :3, 3] = rng.normal(size=(6, 3))
        est = gt.copy()
        est[:, :3, 3] += 0.05 * rng.normal(size=(6, 3))
        errors = aligned_frame_errors(est, gt)
        rmse = math.sqrt(sum(e * e for e in errors) / len(errors))
        assert rmse == pytest.approx(ate_rmse(est, gt).rmse, rel=1e-12)
