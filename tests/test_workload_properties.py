"""Property tests on workload scaling and hardware-model monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import GpuModel, SplatonicAccelerator, Workload
from repro.render import PipelineStats


def synthetic_workload(seed=0, pixels=64, pipeline="pixel"):
    """A hand-built workload with consistent counters."""
    rng = np.random.default_rng(seed)
    lens = rng.integers(5, 60, pixels)
    contribs = np.minimum(lens, rng.integers(3, 40, pixels))
    ids = [rng.integers(0, 500, c) for c in contribs]
    fwd = PipelineStats(
        pipeline=pipeline,
        image_width=64, image_height=48,
        num_gaussians=500, num_projected=450,
        num_pixels=pixels,
        num_candidate_pairs=int(lens.sum() * 2),
        num_contrib_pairs=int(contribs.sum()),
        num_sort_keys=int(lens.sum()),
        num_alpha_checks=int(lens.sum() * 2),
        per_pixel_contribs=[int(c) for c in contribs],
        pixel_list_lengths=[int(n) for n in lens],
    )
    bwd = PipelineStats(
        pipeline=pipeline,
        num_gaussians=500, num_projected=450, num_pixels=pixels,
        num_candidate_pairs=int(lens.sum()),
        num_contrib_pairs=int(contribs.sum()),
        num_atomic_adds=int(contribs.sum()),
        per_pixel_contribs=[int(c) for c in contribs],
        pixel_list_lengths=[int(n) for n in lens],
        pixel_contrib_ids=ids,
    )
    if pipeline == "tile":
        tiles = [(int(n), 16, int(n)) for n in lens[:8]]
        fwd.tile_work = list(tiles)
        bwd.tile_work = list(tiles)
        fwd.num_tile_pairs = int(sum(t[0] for t in tiles))
        bwd.num_tile_pairs = fwd.num_tile_pairs
    return Workload("synthetic", fwd, bwd)


class TestUpscaleProperties:
    @given(st.integers(0, 100), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_pixel_counters_scale_linearly(self, seed, factor):
        w = synthetic_workload(seed)
        up = w.upscale(factor, 1.0)
        assert up.fwd.num_candidate_pairs == factor * w.fwd.num_candidate_pairs
        assert up.bwd.num_atomic_adds == factor * w.bwd.num_atomic_adds
        assert len(up.fwd.pixel_list_lengths) == factor * len(
            w.fwd.pixel_list_lengths)

    @given(st.integers(0, 100), st.floats(0.5, 20.0))
    @settings(max_examples=25, deadline=None)
    def test_gaussian_counters_scale(self, seed, factor):
        w = synthetic_workload(seed)
        up = w.upscale(1.0, factor)
        assert up.fwd.num_projected == int(w.fwd.num_projected * factor)
        assert up.fwd.num_candidate_pairs == w.fwd.num_candidate_pairs

    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_id_streams_not_replicated(self, seed):
        w = synthetic_workload(seed)
        up = w.upscale(7.0, 2.0)
        assert len(up.bwd.pixel_contrib_ids) == len(w.bwd.pixel_contrib_ids)


class TestModelMonotonicity:
    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_gpu_time_monotone_in_pixels(self, seed):
        gpu = GpuModel()
        small = synthetic_workload(seed, pixels=32)
        big = synthetic_workload(seed, pixels=128)
        assert (gpu.iteration_times(big).total
                >= gpu.iteration_times(small).total - 1e-12)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_accel_time_monotone_in_scale(self, seed):
        accel = SplatonicAccelerator()
        w = synthetic_workload(seed)
        base = accel.iteration_report(w).total_s
        bigger = accel.iteration_report(w.upscale(4.0, 1.0)).total_s
        assert bigger >= base

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_energy_monotone_in_scale(self, seed):
        gpu = GpuModel()
        w = synthetic_workload(seed)
        assert (gpu.iteration_energy(w.upscale(3.0, 1.0))
                >= gpu.iteration_energy(w))

    def test_iterations_amortize(self):
        gpu = GpuModel()
        w = synthetic_workload(0)
        once = gpu.iteration_times(w).total
        amortized = gpu.iteration_times(w.scaled(10)).total
        # Same totals spread over 10 iterations -> smaller per-iteration
        # compute, but launch/overhead stay per-iteration.
        assert amortized < once
