"""Bench harness: table formatting and the scenario/workload builders."""

import numpy as np
import pytest

from repro.bench import (
    PAPER_GAUSSIANS,
    build_bundle,
    format_kv,
    format_table,
    mapping_workloads,
    tracking_workloads,
)


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20.0}]
        text = format_table("Demo", rows)
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table("Empty", [])

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table("T", rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[1]

    def test_float_formatting(self):
        rows = [{"x": 0.000123}, {"x": 12345.6}, {"x": 1.25}]
        text = format_table("F", rows)
        assert "0.000123" in text
        assert "1.25" in text

    def test_format_kv(self):
        text = format_kv("KV", {"alpha": 1.0, "beta": "x"})
        assert "== KV ==" in text
        assert "alpha" in text and "beta" in text

    def test_missing_column_is_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table("M", rows, columns=["a", "b"])
        assert text  # renders without raising


@pytest.mark.slow
class TestScenario:
    @pytest.fixture(scope="class")
    def bundle(self):
        return build_bundle(width=64, height=48, n_frames=6,
                            surface_density=9)

    def test_bundle_contents(self, bundle):
        assert len(bundle.cloud) > 100
        assert bundle.frame.color.shape == (48, 64, 3)
        assert bundle.pixel_factor > 100
        assert np.isclose(bundle.gaussian_factor * len(bundle.cloud),
                          PAPER_GAUSSIANS)

    def test_bundle_cached(self, bundle):
        again = build_bundle(width=64, height=48, n_frames=6,
                             surface_density=9)
        assert again is bundle

    def test_tracking_workloads_modes(self, bundle):
        ws = tracking_workloads(bundle)
        assert set(ws) == {"dense", "tile_sparse", "pixel"}
        assert ws["dense"].pipeline == "tile"
        assert ws["pixel"].pipeline == "pixel"
        # Sparse variants render the same pixel count.
        assert (ws["tile_sparse"].fwd.num_pixels
                == ws["pixel"].fwd.num_pixels)

    def test_tracking_tile_controls_pixels(self, bundle):
        coarse = tracking_workloads(bundle, tile=16)["pixel"]
        fine = tracking_workloads(bundle, tile=8)["pixel"]
        assert fine.fwd.num_pixels > 3 * coarse.fwd.num_pixels

    def test_mapping_workloads_render_more_pixels(self, bundle):
        track = tracking_workloads(bundle)["pixel"]
        mapping = mapping_workloads(bundle)["pixel"]
        assert mapping.fwd.num_pixels > track.fwd.num_pixels
