"""Backward pass: analytic gradients versus numerical differentiation.

These are the strongest correctness tests in the repository: every
trainable quantity (means, log-scales, opacity logits, colors, camera
twist) is checked against central differences through the full pipeline.
"""

import numpy as np
import pytest

from repro.gaussians import Camera, GaussianCloud, Intrinsics, se3_exp
from repro.render import backward_full, render_full
from repro.render.backward import ProjectedGradients


def make_scene(n=25, seed=0):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-1, 1, n), rng.uniform(-0.8, 0.8, n),
                        rng.uniform(1.2, 4, n)], axis=-1),
        scales=rng.uniform(0.05, 0.25, n),
        opacities=rng.uniform(0.2, 0.9, n),
        colors=rng.uniform(0.1, 0.9, (n, 3)),
    )
    cam = Camera(Intrinsics.from_fov(24, 18, 70.0))
    return cloud, cam


BG = np.array([0.2, 0.1, 0.3])


def loss_and_grads(cloud, cam, seed=0):
    """Random linear loss over all three channels + analytic gradients."""
    rng = np.random.default_rng(seed)
    res = render_full(cloud, cam, BG, tile_size=8)
    wc = rng.normal(size=res.color.shape)
    wd = rng.normal(size=res.depth.shape)
    ws = rng.normal(size=res.silhouette.shape)

    def loss_fn(cloud2, cam2):
        r = render_full(cloud2, cam2, BG, tile_size=8, keep_cache=False)
        return float((r.color * wc).sum() + (r.depth * wd).sum()
                     + (r.silhouette * ws).sum())

    grads = backward_full(res, cloud, cam, wc, wd, ws)
    return loss_fn, grads


class TestParameterGradients:
    def test_all_parameters_match_numerical(self):
        cloud, cam = make_scene()
        loss_fn, grads = loss_and_grads(cloud, cam)
        analytic = grads.as_cloud_vector()
        vec = cloud.pack()
        rng = np.random.default_rng(1)
        eps = 1e-6
        for i in rng.choice(len(vec), 40, replace=False):
            vp, vm = vec.copy(), vec.copy()
            vp[i] += eps
            vm[i] -= eps
            num = (loss_fn(cloud.unpack(vp), cam)
                   - loss_fn(cloud.unpack(vm), cam)) / (2 * eps)
            denom = abs(num) + abs(analytic[i]) + 1e-5
            assert abs(num - analytic[i]) / denom < 1e-3, (
                f"param {i}: numeric {num} vs analytic {analytic[i]}")

    def test_out_of_frustum_gradient_is_zero(self):
        cloud, cam = make_scene()
        behind = GaussianCloud.create(
            means=np.array([[0.0, 0.0, -2.0]]), scales=np.array([0.1]),
            opacities=np.array([0.5]), colors=np.full((1, 3), 0.5))
        joined = cloud.extend(behind)
        _, grads = loss_and_grads(joined, cam)
        assert np.allclose(grads.d_means[-1], 0)
        assert grads.d_log_scales[-1] == 0
        assert grads.d_logit_opacities[-1] == 0

    def test_gradient_shapes(self):
        cloud, cam = make_scene(n=7)
        _, grads = loss_and_grads(cloud, cam)
        assert grads.d_means.shape == (7, 3)
        assert grads.d_log_scales.shape == (7,)
        assert grads.d_logit_opacities.shape == (7,)
        assert grads.d_colors.shape == (7, 3)
        assert grads.d_pose_twist.shape == (6,)

    def test_color_gradient_gated_outside_unit_range(self):
        """Colors are clamped at render time with a straight-through gate:
        a gradient that would push a color *further* outside [0, 1] is
        zeroed, while one pulling it back in passes through."""
        cloud, cam = make_scene(n=10, seed=3)
        cloud.colors[0] = [1.5, -0.5, 0.5]
        res = render_full(cloud, cam, BG, tile_size=8)
        n = len(cloud)
        for sign in (+1.0, -1.0):
            # Under gradient descent (param -= lr * grad), a positive
            # gradient *decreases* the parameter.  So for an over-range
            # color only positive gradients pass (they pull it back in);
            # for an under-range color only negative gradients pass.
            grads = backward_full(res, cloud, cam,
                                  sign * np.ones_like(res.color),
                                  np.zeros_like(res.depth),
                                  np.zeros_like(res.silhouette))
            g_over = grads.d_colors[0, 0]   # raw color 1.5 (above range)
            g_under = grads.d_colors[0, 1]  # raw color -0.5 (below range)
            if sign > 0:
                assert g_over >= 0.0, "inward pull on over-range passes"
                assert g_under == 0.0, "outward push on under-range is gated"
            else:
                assert g_over == 0.0, "outward push on over-range is gated"
                assert g_under <= 0.0, "inward pull on under-range passes"


class TestPoseGradient:
    def test_twist_matches_numerical(self):
        cloud, cam0 = make_scene(seed=5)
        pose = cam0.pose_c2w @ se3_exp(np.array(
            [0.03, -0.02, 0.01, 0.01, -0.005, 0.02]))
        cam = cam0.with_pose(pose)
        loss_fn, grads = loss_and_grads(cloud, cam, seed=7)
        eps = 1e-6
        for j in range(6):
            xi = np.zeros(6)
            xi[j] = eps
            lp = loss_fn(cloud, cam.with_pose(pose @ se3_exp(xi)))
            lm = loss_fn(cloud, cam.with_pose(pose @ se3_exp(-xi)))
            num = (lp - lm) / (2 * eps)
            an = grads.d_pose_twist[j]
            assert abs(num - an) / (abs(num) + abs(an) + 1e-5) < 1e-3

    def test_zero_loss_gives_zero_twist(self):
        cloud, cam = make_scene(seed=6)
        res = render_full(cloud, cam, BG, tile_size=8)
        grads = backward_full(res, cloud, cam,
                              np.zeros_like(res.color),
                              np.zeros_like(res.depth),
                              np.zeros_like(res.silhouette))
        assert np.allclose(grads.d_pose_twist, 0)
        assert np.allclose(grads.d_means, 0)


class TestAggregationStats:
    def test_atomic_adds_equal_contrib_pairs(self):
        cloud, cam = make_scene(seed=8)
        res = render_full(cloud, cam, BG, tile_size=8)
        grads = backward_full(res, cloud, cam,
                              np.ones_like(res.color),
                              np.zeros_like(res.depth),
                              np.zeros_like(res.silhouette))
        assert grads.stats.num_atomic_adds == grads.stats.num_contrib_pairs
        assert grads.stats.num_atomic_adds == res.stats.num_contrib_pairs

    def test_contrib_id_stream_matches_counts(self):
        cloud, cam = make_scene(seed=9)
        res = render_full(cloud, cam, BG, tile_size=8)
        grads = backward_full(res, cloud, cam,
                              np.ones_like(res.color),
                              np.zeros_like(res.depth),
                              np.zeros_like(res.silhouette))
        total_ids = sum(len(p) for p in grads.stats.pixel_contrib_ids)
        assert total_ids == grads.stats.num_atomic_adds

    def test_projected_gradients_zeros(self):
        pg = ProjectedGradients.zeros(4)
        assert pg.d_mean2d.shape == (4, 2)
        assert np.allclose(pg.d_sigma2d, 0)
