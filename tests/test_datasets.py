"""Synthetic datasets: scenes, trajectories, sequence rendering."""

import numpy as np
import pytest

from repro.datasets import (
    REPLICA_SEQUENCES,
    TUM_SEQUENCES,
    SceneSpec,
    look_at,
    make_replica_sequence,
    make_room_scene,
    make_tum_sequence,
    orbit_trajectory,
    perturb_trajectory,
    scan_trajectory,
    trajectory_positions,
)


class TestScene:
    def test_scene_size_scales_with_density(self):
        small = make_room_scene(SceneSpec(surface_density=5.0))
        big = make_room_scene(SceneSpec(surface_density=15.0))
        assert len(big) > 2 * len(small)

    def test_points_within_room(self):
        spec = SceneSpec(extent=3.0, height=2.5)
        cloud = make_room_scene(spec)
        assert np.all(np.abs(cloud.means[:, 0]) <= spec.extent + 1e-6)
        assert np.all(np.abs(cloud.means[:, 2]) <= spec.extent + 1e-6)
        assert np.all(np.abs(cloud.means[:, 1]) <= spec.height / 2 + 1e-6)

    def test_colors_valid(self):
        cloud = make_room_scene(SceneSpec())
        assert np.all((cloud.colors >= 0) & (cloud.colors <= 1))

    def test_deterministic_by_seed(self):
        a = make_room_scene(SceneSpec(seed=7))
        b = make_room_scene(SceneSpec(seed=7))
        assert np.allclose(a.means, b.means)

    def test_different_seed_different_scene(self):
        a = make_room_scene(SceneSpec(seed=1))
        b = make_room_scene(SceneSpec(seed=2))
        assert a.means.shape != b.means.shape or not np.allclose(
            a.means, b.means)

    def test_furniture_adds_gaussians(self):
        none = make_room_scene(SceneSpec(furniture=0))
        some = make_room_scene(SceneSpec(furniture=4))
        assert len(some) > len(none)


class TestTrajectories:
    def test_look_at_forward_axis(self):
        T = look_at(np.zeros(3), np.array([0, 0, 5.0]))
        assert np.allclose(T[:3, 2], [0, 0, 1])

    def test_look_at_is_rigid(self):
        T = look_at(np.array([1.0, -0.5, 2.0]), np.array([0, 0, 0.0]))
        R = T[:3, :3]
        assert np.allclose(R @ R.T, np.eye(3), atol=1e-9)
        assert np.isclose(np.linalg.det(R), 1.0)

    def test_look_at_rejects_coincident(self):
        with pytest.raises(ValueError):
            look_at(np.zeros(3), np.zeros(3))

    def test_orbit_length_and_radius(self):
        poses = orbit_trajectory(10, radius=1.5)
        assert len(poses) == 10
        pos = trajectory_positions(poses)
        assert np.allclose(np.linalg.norm(pos[:, [0, 2]], axis=1), 1.5)

    def test_scan_endpoints(self):
        start = np.array([0.0, 0, 0])
        end = np.array([1.0, 0, 0])
        poses = scan_trajectory(5, start, end, np.array([0, 0, 5.0]),
                                bob=0.0)
        pos = trajectory_positions(poses)
        assert np.allclose(pos[0], start)
        assert np.allclose(pos[-1], end)

    def test_perturb_changes_poses(self):
        poses = orbit_trajectory(5)
        rng = np.random.default_rng(0)
        noisy = perturb_trajectory(poses, rng, 0.02, 0.02)
        deltas = [np.linalg.norm(a[:3, 3] - b[:3, 3])
                  for a, b in zip(poses, noisy)]
        assert max(deltas) > 0
        assert max(deltas) < 0.2


class TestSequences:
    @pytest.fixture(scope="class")
    def seq(self):
        return make_replica_sequence("room0", n_frames=4, width=32,
                                     height=24, surface_density=8)

    def test_replica_names(self):
        assert len(REPLICA_SEQUENCES) == 8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_replica_sequence("kitchen9")
        with pytest.raises(KeyError):
            make_tum_sequence("fr9_nope")

    def test_frame_shapes(self, seq):
        frame = seq[0]
        assert frame.color.shape == (24, 32, 3)
        assert frame.depth.shape == (24, 32)
        assert frame.gt_pose_c2w.shape == (4, 4)

    def test_color_range(self, seq):
        for frame in seq:
            assert frame.color.min() >= 0.0
            assert frame.color.max() <= 1.0

    def test_depth_mostly_positive(self, seq):
        """Looking into a closed room, nearly every ray hits a surface."""
        frame = seq[0]
        assert (frame.depth > 0).mean() > 0.9

    def test_gt_trajectory_matches_frames(self, seq):
        traj = seq.gt_trajectory
        assert traj.shape == (4, 4, 4)
        assert np.allclose(traj[2], seq[2].gt_pose_c2w)

    def test_deterministic(self):
        a = make_replica_sequence("room1", n_frames=2, width=24, height=18,
                                  surface_density=8)
        b = make_replica_sequence("room1", n_frames=2, width=24, height=18,
                                  surface_density=8)
        assert np.allclose(a[0].color, b[0].color)

    def test_interframe_motion_is_small(self, seq):
        """Per-frame motion must stay within the tracker's basin."""
        from repro.gaussians import se3_inverse, se3_log
        for a, b in zip(seq.gt_trajectory[:-1], seq.gt_trajectory[1:]):
            xi = se3_log(se3_inverse(a) @ b)
            assert np.linalg.norm(xi) < 0.3

    def test_tum_has_noise(self):
        clean = make_replica_sequence("room0", n_frames=2, width=24,
                                      height=18, surface_density=8)
        noisy = make_tum_sequence("fr1_desk", n_frames=2, width=24,
                                  height=18, surface_density=8)
        # TUM-like depth has multiplicative noise: neighbouring depths of a
        # flat wall vary more than in the clean sequence.
        assert np.std(np.diff(noisy[0].depth, axis=1)) > 0

    def test_tum_names(self):
        assert len(TUM_SEQUENCES) == 3
