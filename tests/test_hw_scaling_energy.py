"""Technology scaling, energy ledger, and the exp LUT."""

import numpy as np
import pytest

from repro.hw import (
    ACCEL_OPS,
    GPU_OPS,
    NODES,
    EnergyLedger,
    ExpLUT,
    scale_area,
    scale_delay,
    scale_energy,
)


class TestScaling:
    def test_identity(self):
        assert scale_area(2.0, 16, 16) == 2.0
        assert scale_energy(2.0, 8, 8) == 2.0

    def test_shrinking_node_shrinks_everything(self):
        assert scale_area(1.0, 16, 8) < 1.0
        assert scale_delay(1.0, 16, 8) < 1.0
        assert scale_energy(1.0, 16, 8) < 1.0

    def test_growing_node_grows(self):
        assert scale_area(1.0, 16, 28) > 1.0

    def test_roundtrip(self):
        v = scale_area(scale_area(3.0, 16, 8), 8, 16)
        assert np.isclose(v, 3.0)

    def test_monotone_across_nodes(self):
        areas = [NODES[n].area for n in sorted(NODES)]
        assert areas == sorted(areas)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            scale_area(1.0, 16, 5)


class TestEnergyLedger:
    def test_total(self):
        ledger = EnergyLedger(ACCEL_OPS)
        ledger.add("flop", 1e6)
        expected = ACCEL_OPS.flop * 1e6 * 1e-12
        assert np.isclose(ledger.total_joules(), expected)

    def test_accumulates(self):
        ledger = EnergyLedger(ACCEL_OPS)
        ledger.add("flop", 10)
        ledger.add("flop", 5)
        assert ledger.counts["flop"] == 15

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            EnergyLedger(ACCEL_OPS).add("teleport", 1)

    def test_breakdown_sums_to_total(self):
        ledger = EnergyLedger(GPU_OPS)
        ledger.add("flop", 100)
        ledger.add("dram_byte", 200)
        ledger.add("atomic", 50)
        assert np.isclose(sum(ledger.breakdown_joules().values()),
                          ledger.total_joules())

    def test_scaled_to_preserves_dram(self):
        scaled = ACCEL_OPS.scaled_to(8)
        assert scaled.dram_byte == ACCEL_OPS.dram_byte
        assert scaled.flop < ACCEL_OPS.flop

    def test_gpu_ops_cost_more_than_accel(self):
        accel8 = ACCEL_OPS.scaled_to(8)
        assert GPU_OPS.flop > 3 * accel8.flop
        assert GPU_OPS.special > 3 * accel8.special


class TestExpLUT:
    def test_error_decreases_with_entries(self):
        errs = [ExpLUT(n).max_abs_error(20_000) for n in (8, 16, 32, 64)]
        assert all(a > b for a, b in zip(errs, errs[1:]))

    def test_64_entries_below_alpha_threshold(self):
        """The paper's 64-entry LUT keeps the alpha error below the
        alpha-check threshold, so no pass/fail decision can flip far from
        the boundary."""
        assert ExpLUT(64).max_abs_error(50_000) < 1.0 / 255.0

    def test_exact_at_knots(self):
        lut = ExpLUT(16)
        xs = np.linspace(0, lut.x_max, 16)
        assert np.allclose(lut(xs), np.exp(-xs), atol=1e-12)

    def test_clamps_beyond_range(self):
        lut = ExpLUT(32)
        assert lut(np.array([100.0]))[0] == 0.0

    def test_endpoints(self):
        lut = ExpLUT(64)
        assert np.isclose(lut(np.array([0.0]))[0], 1.0)

    def test_size_bytes(self):
        assert ExpLUT(64).size_bytes == 128

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ExpLUT(1)

    def test_alpha_error_scales_with_opacity(self):
        lut = ExpLUT(32)
        assert np.isclose(lut.alpha_error(0.5, 10_000),
                          0.5 * lut.max_abs_error(10_000))
