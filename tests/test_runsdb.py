"""Run registry: append-only index, content-addressed artifacts,
metric extraction, ingestion paths, and the disabled-==-free wiring."""

import json
import os

import pytest

from repro.core import SplatonicConfig
from repro.datasets import make_replica_sequence
from repro.obs import runsdb, telemetry
from repro.obs.runsdb import (
    REGISTRY_SCHEMA_VERSION,
    RunRegistry,
    config_hash,
    ingest_bench_payload,
    ingest_slam_run,
)
from repro.slam import SLAMSystem


@pytest.fixture(scope="module")
def sequence():
    return make_replica_sequence("room0", n_frames=4, width=32, height=24,
                                 surface_density=10)


def run_slam(sequence, tile=8, registry=None):
    return SLAMSystem(
        "splatam", mode="sparse",
        splatonic_config=SplatonicConfig(tracking_tile=tile)).run(
            sequence, registry=registry)


def make_bench_payload(ratio=1.2):
    """Minimal valid suite payload (schema of repro.obs.bench)."""
    return {
        "schema_version": 1,
        "suite": "tiny",
        "sequence": "room0",
        "repetitions": 2,
        "environment": {"python": "3.12.0", "numpy": "1.26.0",
                        "cpu_count": 8},
        "scenarios": {
            "tracking": {
                "counters": {"num_pixels": 100, "num_sort_keys": 50},
                "model": {"total_cycles": 1000.0, "dram_bytes": 4096.0},
                "info": {"gaussians": 64},
                "wall": {"median_s": 0.01, "mad_s": 0.001},
                "overhead": {"ratio": ratio, "mad": 0.01,
                             "extra": {"bus_ratio": {"ratio": 1.1}}},
                "trace_stages": [
                    {"span": "tracking_fwd", "self_s": 0.004}],
            },
        },
    }


class TestKeying:
    def test_config_hash_is_stable_and_order_free(self):
        a = config_hash({"tile": 8, "mode": "sparse"})
        b = config_hash({"mode": "sparse", "tile": 8})
        assert a == b and len(a) == 16
        assert config_hash({"tile": 4}) != a
        assert config_hash(None) is None


class TestRegistry:
    def test_register_and_get_round_trip(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        record = reg.register(
            "slam", metrics={"x": 1.0}, config={"tile": 8},
            sequence="room0", artifacts={"blob": b"hello"})
        assert record["schema_version"] == REGISTRY_SCHEMA_VERSION
        assert record["run_id"].startswith("r")
        assert record["seq"] == 1
        assert record["key"]["config_hash"] == config_hash({"tile": 8})
        assert "python" in record["key"]["environment"]
        got = reg.get(record["run_id"])
        assert got == json.loads(json.dumps(record))
        assert reg.read_artifact(got, "blob") == b"hello"

    def test_index_is_append_only_jsonl(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        reg.register("slam", metrics={"x": 1.0})
        reg.register("slam", metrics={"x": 2.0})
        lines = open(reg.index_path).read().splitlines()
        assert len(lines) == 2
        assert [json.loads(l)["seq"] for l in lines] == [1, 2]

    def test_identical_artifacts_stored_once(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        reg.register("slam", artifacts={"blob": b"same"})
        reg.register("slam", artifacts={"blob": b"same"})
        stats = reg.stats()
        assert stats["runs"] == 2
        assert stats["objects"] == 1

    def test_get_by_prefix_seq_and_ambiguity(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        a = reg.register("slam", metrics={"x": 1.0})
        b = reg.register("bench", metrics={"x": 2.0})
        assert reg.get(a["run_id"][:6])["seq"] == 1
        assert reg.get("1")["run_id"] == a["run_id"]
        assert reg.get("-1")["run_id"] == b["run_id"]
        with pytest.raises(KeyError, match="ambiguous"):
            reg.get("r")
        with pytest.raises(KeyError):
            reg.get("zzz")

    def test_runs_filter_by_kind(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        reg.register("slam")
        reg.register("bench")
        assert [r["kind"] for r in reg.runs(kind="bench")] == ["bench"]

    def test_strict_read_rejects_bad_lines(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        reg.register("slam")
        with open(reg.index_path, "a") as f:
            f.write("not json\n")
        with pytest.raises(ValueError, match="malformed"):
            reg.runs()
        assert len(reg.runs(strict=False)) == 1

    def test_strict_read_rejects_other_schema_versions(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        os.makedirs(reg.root, exist_ok=True)
        with open(reg.index_path, "w") as f:
            f.write(json.dumps({"schema_version": 99, "seq": 1}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            reg.runs()

    def test_prune_keeps_recent_and_drops_dead_objects(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        reg.register("slam", artifacts={"blob": b"old"})
        kept = reg.register("slam", artifacts={"blob": b"new"})
        result = reg.prune(keep=1)
        assert result["removed_runs"] == 1
        assert result["removed_objects"] == 1
        assert result["kept_runs"] == 1
        assert [r["run_id"] for r in reg.runs()] == [kept["run_id"]]
        assert reg.read_artifact(reg.get("-1"), "blob") == b"new"

    def test_register_publishes_on_enabled_bus(self, tmp_path):
        telemetry.bus.enable()
        try:
            sub = telemetry.bus.subscribe(kinds=("registry",))
            reg = RunRegistry(str(tmp_path / "reg"))
            record = reg.register("slam", metrics={"x": 1.0})
            events = sub.drain()
        finally:
            telemetry.bus.disable()
            telemetry.bus.reset()
        assert len(events) == 1
        payload = events[0][3]
        assert payload["run_id"] == record["run_id"]
        assert payload["runs_total"] == 1


class TestIngestion:
    def test_slam_run_registration_via_system(self, sequence, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        result = run_slam(sequence, registry=reg)
        assert result.run_id is not None
        record = reg.get(result.run_id)
        assert record["kind"] == "slam"
        assert record["key"]["dataset"] == "room0"
        assert record["config"]["tracking_tile"] == 8
        metrics = record["metrics"]
        assert metrics["slam.frames"] == 4.0
        assert metrics["slam.ate.rmse_m"] >= 0
        assert metrics["slam.wall.mean_s"] > 0
        assert any(k.startswith("slam.tracking_fwd.num_") for k in metrics)
        # The flight artifact round-trips into a parseable log.
        log = reg.load_flight(record)
        assert log.num_frames == 4
        assert log.summary is not None

    def test_run_without_registry_has_no_run_id(self, sequence):
        assert run_slam(sequence).run_id is None

    def test_bench_payload_ingestion(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        record = ingest_bench_payload(reg, make_bench_payload())
        assert record["kind"] == "bench"
        assert record["key"]["environment"]["numpy"] == "1.26.0"
        metrics = record["metrics"]
        assert metrics["bench.tracking.counters.num_pixels"] == 100.0
        assert metrics["bench.tracking.model.total_cycles"] == 1000.0
        assert metrics["bench.tracking.wall.median_s"] == 0.01
        assert metrics["bench.tracking.overhead.ratio"] == 1.2
        assert metrics["bench.tracking.overhead.bus_ratio"] == 1.1
        assert metrics["bench.tracking.trace.tracking_fwd.self_s"] == 0.004
        assert reg.load_artifact_json(record, "bench")["suite"] == "tiny"

    def test_ingest_slam_run_from_record_stream(self, sequence, tmp_path):
        from repro.obs.flight import FlightRecorder

        rec = FlightRecorder()
        rec.enable()
        SLAMSystem("splatam", mode="sparse",
                   splatonic_config=SplatonicConfig(tracking_tile=8)).run(
            sequence, flight=rec)
        rec.disable()
        reg = RunRegistry(str(tmp_path / "reg"))
        record = ingest_slam_run(reg, rec.records,
                                 extra_artifacts={"note": b"x"})
        assert record["kind"] == "slam"
        assert set(record["artifacts"]) == {"flight", "note"}
        assert record["meta"]["algorithm"] == "splatam"


class TestDisabledIsFree:
    def test_default_run_never_touches_runsdb(self, sequence):
        """registry=None stays one `is not None` branch: the run must
        not import or call into runsdb at all."""
        import sys
        import unittest.mock as mock

        with mock.patch.object(runsdb, "ingest_slam_run",
                               side_effect=AssertionError) as spy:
            result = run_slam(sequence)
        assert result.run_id is None
        assert spy.call_count == 0
        assert "repro.obs.runsdb" in sys.modules  # import was ours, above
