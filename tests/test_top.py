"""``repro top``: dashboard rendering, snapshot sources, and headline
parity with the post-hoc ``repro report``."""

import pytest

from repro.cli import main
from repro.obs.flight import read_flight_record
from repro.obs.report import render_report
from repro.obs.telemetry import TelemetryBus
from repro.obs.top import (
    FlightSource,
    HttpSource,
    LiveSource,
    render_dashboard,
    run_top,
)


@pytest.fixture(scope="class")
def record_path(tmp_path_factory):
    """A short recorded run every test in the class shares."""
    path = str(tmp_path_factory.mktemp("top") / "run.jsonl")
    main(["-q", "slam", "--frames", "3", "--width", "24", "--height", "18",
          "--tracking-tile", "8", "--flight-record", path])
    return path


def _snapshot(done=True, alerts=()):
    snap = {
        "header": {"algorithm": "splatam", "mode": "sparse", "frames": 5,
                   "sequence": "synth"},
        "done": done,
        "frame": 4,
        "frames_seen": 5,
        "frames_total": 5,
        "fps": 2.5,
        "gaussians": 640,
        "pose_error_m": 0.0123,
        "pose_rmse_so_far_m": 0.0150,
        "tracking": {"iterations": 12, "converged": True,
                     "final_loss": 0.031},
        "sampling": {"total": 100, "unseen": 40, "weighted": 60,
                     "unseen_coverage": 0.8},
        "keyframe": {"buffer_size": 3},
        "counters": {"tracking_fwd": {"num_contrib_pairs": 1234}},
        "series": {"pose_error_m": [0.02, 0.015, 0.0123],
                   "tracking_loss": [0.2, 0.1, 0.031],
                   "mapping_loss": [],
                   "gaussians": [600, 620, 640],
                   "alpha_rejection": [0.4, 0.4, 0.4],
                   "wall_time_s": [0.4, 0.4, 0.4]},
        "alerts": list(alerts),
        "alert_count": len(alerts),
        "summary": None,
    }
    if done:
        snap["summary"] = {
            "frames": 5, "final_gaussians": 640, "mapping_invocations": 2,
            "tracking_iterations": 60,
            "ate": {"rmse": 0.0155, "median": 0.0150, "max": 0.0210},
        }
    return snap


class TestRenderDashboard:
    def test_renders_every_section(self):
        text = render_dashboard(_snapshot(), color=False)
        assert "repro top" in text
        assert "splatam/sparse" in text and "synth" in text
        assert "[########################] 5/5" in text
        assert "fps 2.5" in text
        assert "gaussians 640" in text
        assert "pose rmse so far 1.50 cm" in text
        assert "last err 1.23 cm" in text
        assert "track iters 12 (conv, loss 0.031)" in text
        assert "unseen 40%" in text and "weighted 60%" in text
        assert "pose err (m)" in text and "gaussians" in text
        assert "tracking_fwd contrib 1,234" in text
        assert "alerts: none" in text
        assert "done" in text

    def test_final_block_uses_report_strings(self):
        text = render_dashboard(_snapshot(), color=False)
        assert "ATE rmse 1.55 cm (median 1.50 cm, max 2.10 cm)" in text
        assert "640 Gaussians after 2 mapping invocations" in text
        assert "60 iterations total" in text

    def test_in_progress_snapshot_has_no_final_block(self):
        text = render_dashboard(_snapshot(done=False), color=False)
        assert "final:" not in text and "ATE rmse" not in text
        assert "done" not in text.splitlines()[0]

    def test_alert_ticker_shows_most_recent(self):
        alerts = [{"monitor": f"m{i}", "frame": i, "message": f"msg {i}"}
                  for i in range(6)]
        text = render_dashboard(_snapshot(alerts=alerts), color=False)
        assert "alerts (6):" in text
        assert "[frame 5] m5: msg 5" in text
        assert "m1:" not in text          # only the last 4 shown

    def test_color_mode_emits_ansi_plain_mode_does_not(self):
        snap = _snapshot()
        assert "\x1b[1m" in render_dashboard(snap, color=True)
        assert "\x1b" not in render_dashboard(snap, color=False)

    def test_empty_snapshot_renders(self):
        text = render_dashboard({}, color=False)
        assert "repro top" in text

    def test_registry_footer_names_the_registered_run(self):
        snap = _snapshot()
        snap["registry"] = {"run_id": "rdeadbeef0123",
                            "root": ".repro/runs",
                            "runs_total": 7}
        text = render_dashboard(snap, color=False)
        assert "registered:" in text
        assert "rdeadbeef0123" in text
        assert ".repro/runs" in text and "7 runs" in text
        assert "repro runs show rdeadbeef0123" in text

    def test_no_registry_event_means_no_footer(self):
        assert "registered:" not in render_dashboard(_snapshot(),
                                                     color=False)
        snap = _snapshot()
        snap["registry"] = {}        # event seen but empty: still silent
        assert "registered:" not in render_dashboard(snap, color=False)


class TestSources:
    @pytest.mark.parametrize("endpoint,expected", [
        ("localhost:9464", "http://localhost:9464"),
        ("http://localhost:9464/", "http://localhost:9464"),
        ("http://10.0.0.2:9000/runz", "http://10.0.0.2:9000"),
        ("https://host:1/runz", "https://host:1"),
    ])
    def test_http_source_normalizes_endpoint(self, endpoint, expected):
        assert HttpSource(endpoint).endpoint == expected

    def test_live_source_follows_the_bus(self):
        bus = TelemetryBus(enabled=True)
        source = LiveSource(bus_=bus)
        try:
            bus.publish("header", {"frames": 2})
            bus.publish("frame", {"frame": 0, "pose_error_m": 0.01,
                                  "gaussians": 10})
            snap = source.snapshot()
            assert snap["frames_total"] == 2 and snap["frames_seen"] == 1
            bus.publish("summary", {"frames": 1})
            assert source.snapshot()["done"]
            bus.publish("registry", {"run_id": "rabc", "runs_total": 1})
            assert source.snapshot()["registry"]["run_id"] == "rabc"
        finally:
            source.close()
        assert bus.subscriber_count == 0


class TestFlightParity:
    def test_flight_source_replays_the_run(self, record_path):
        source = FlightSource(record_path)
        snap = source.snapshot()
        assert snap["done"]
        assert snap["frames_seen"] == 3
        assert snap["series"]["pose_error_m"]

    def test_headline_parity_with_report(self, record_path):
        """The live dashboard and `repro report` print the same headline
        strings for the same run — byte-identical ATE / map-size /
        iteration lines."""
        log = read_flight_record(record_path)
        report = render_report(log)
        dashboard = render_dashboard(FlightSource(record_path).snapshot(),
                                     color=False)
        summary = log.summary
        ate = summary["ate"]
        headlines = [
            # The report prefixes this with "**ATE rmse**: ", the
            # dashboard with "ATE rmse " — the formatted numbers are the
            # shared, byte-identical part.
            (f"{ate.get('rmse', 0) * 100:.2f} cm "
             f"(median {ate.get('median', 0) * 100:.2f} cm, "
             f"max {ate.get('max', 0) * 100:.2f} cm)"),
            (f"{summary['final_gaussians']} Gaussians after "
             f"{summary.get('mapping_invocations', '?')} mapping "
             f"invocations"),
            f"{summary['tracking_iterations']} iterations total",
        ]
        for line in headlines:
            assert line in report
            assert line in dashboard


class TestRunTop:
    def test_once_renders_single_snapshot(self, record_path, tmp_path):
        import io

        out = io.StringIO()
        snap = run_top(FlightSource(record_path), once=True, color=False,
                       out=out)
        text = out.getvalue()
        assert snap["done"]
        assert text.count("repro top") == 1
        assert "\x1b" not in text

    def test_loop_stops_when_done(self, record_path):
        import io

        out = io.StringIO()
        snap = run_top(FlightSource(record_path), interval=0.0, color=False,
                       out=out, max_iterations=10)
        assert snap["done"]
        assert out.getvalue().count("repro top") == 1

    def test_loop_respects_max_iterations(self):
        import io

        class NeverDone:
            def snapshot(self):
                return {"done": False}

            def close(self):
                self.closed = True

        source = NeverDone()
        out = io.StringIO()
        run_top(source, interval=0.0, color=False, out=out, max_iterations=3)
        assert out.getvalue().count("repro top") == 3
        assert source.closed


class TestTopCommand:
    def test_once_from_flight(self, record_path, capsys):
        main(["top", "--once", "--from-flight", record_path, "--no-color"])
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "ATE rmse" in out
        assert "\x1b" not in out

    def test_requires_exactly_one_source(self, record_path):
        with pytest.raises(SystemExit):
            main(["top"])
        with pytest.raises(SystemExit):
            main(["top", "--endpoint", "localhost:9464",
                  "--from-flight", record_path])

    def test_missing_flight_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["top", "--once", "--from-flight",
                  str(tmp_path / "nope.jsonl")])

    def test_against_live_server(self, record_path):
        """End-to-end: a real exporter serving a replayed run feeds the
        HttpSource the CLI would build for --endpoint."""
        from repro.obs.promexport import TelemetryHTTPServer
        from repro.obs.telemetry import TelemetryBus, TelemetryConfig

        bus = TelemetryBus(enabled=True)
        server = TelemetryHTTPServer(TelemetryConfig(port=0), bus_=bus)
        server.start()
        try:
            log = read_flight_record(record_path)
            bus.publish("header", log.header)
            for frame in log.frames:
                bus.publish("frame", frame)
            bus.publish("summary", log.summary)
            import io

            out = io.StringIO()
            snap = run_top(HttpSource(server.url), once=True, color=False,
                           out=out)
            assert snap["done"]
            assert "ATE rmse" in out.getvalue()
        finally:
            server.stop()
