"""Anisotropic renderer: covariance math, gradients, isotropic equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import Camera, GaussianCloud, Intrinsics, se3_exp
from repro.gaussians.covariance import (
    build_covariance,
    covariance_gradients,
    quat_rotation_derivatives,
)
from repro.render import (
    AnisotropicCloud,
    backward_sparse_anisotropic,
    project_anisotropic,
    render_sparse_anisotropic,
)
from repro.core.pixel_pipeline import render_sparse

BG = np.array([0.2, 0.1, 0.3])


def make_aniso(n=15, seed=0, isotropic=False):
    rng = np.random.default_rng(seed)
    if isotropic:
        s = rng.uniform(0.05, 0.3, n)
        scales = np.repeat(s[:, None], 3, axis=1)
        quats = np.zeros((n, 4))
        quats[:, 0] = 1.0
    else:
        scales = rng.uniform(0.05, 0.3, (n, 3))
        quats = rng.normal(size=(n, 4))
    return AnisotropicCloud.create(
        means=np.stack([rng.uniform(-1, 1, n), rng.uniform(-0.8, 0.8, n),
                        rng.uniform(1.2, 4, n)], axis=-1),
        scales=scales,
        quaternions=quats,
        opacities=rng.uniform(0.2, 0.9, n),
        colors=rng.uniform(0.1, 0.9, (n, 3)),
    )


class TestCovariance:
    def test_build_is_spd(self):
        rng = np.random.default_rng(0)
        sigma = build_covariance(rng.normal(size=(10, 4)),
                                 rng.uniform(0.1, 1, (10, 3)))
        assert np.allclose(sigma, np.swapaxes(sigma, 1, 2))
        for m in sigma:
            assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_identity_rotation_gives_diagonal(self):
        q = np.array([[1.0, 0, 0, 0]])
        s = np.array([[0.1, 0.2, 0.3]])
        sigma = build_covariance(q, s)
        assert np.allclose(sigma[0], np.diag(s[0] ** 2))

    def test_rotation_derivatives_numerical(self):
        from repro.gaussians.se3 import quat_to_rotmat
        rng = np.random.default_rng(1)
        q = rng.normal(size=(3, 4))
        dR = quat_rotation_derivatives(q)
        eps = 1e-7
        for i in range(3):
            for a in range(4):
                qp, qm = q[i].copy(), q[i].copy()
                qp[a] += eps
                qm[a] -= eps
                num = (quat_to_rotmat(qp) - quat_to_rotmat(qm)) / (2 * eps)
                assert np.allclose(dR[i, a], num, atol=1e-6)

    def test_covariance_gradients_numerical(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(4, 4))
        log_s = rng.uniform(-2, 0, (4, 3))
        Wt = rng.normal(size=(4, 3, 3))

        def loss(qv, lsv):
            return float((build_covariance(qv, np.exp(lsv)) * Wt).sum())

        d_ls, d_q = covariance_gradients(q, np.exp(log_s), Wt)
        eps = 1e-6
        for i in range(4):
            for k in range(3):
                lp, lm = log_s.copy(), log_s.copy()
                lp[i, k] += eps
                lm[i, k] -= eps
                num = (loss(q, lp) - loss(q, lm)) / (2 * eps)
                assert np.isclose(num, d_ls[i, k], rtol=1e-4, atol=1e-7)
            for a in range(4):
                qp, qm = q.copy(), q.copy()
                qp[i, a] += eps
                qm[i, a] -= eps
                num = (loss(qp, log_s) - loss(qm, log_s)) / (2 * eps)
                assert np.isclose(num, d_q[i, a], rtol=1e-4, atol=1e-7)


class TestCloudContainer:
    def test_pack_unpack_roundtrip(self):
        cloud = make_aniso(7)
        again = cloud.unpack(cloud.pack())
        assert np.allclose(again.means, cloud.means)
        assert np.allclose(again.quaternions, cloud.quaternions)
        assert np.allclose(again.log_scales, cloud.log_scales)

    def test_pack_length(self):
        assert make_aniso(5).pack().shape == (5 * 14,)

    def test_from_isotropic(self):
        rng = np.random.default_rng(3)
        iso = GaussianCloud.create(
            means=rng.normal(size=(6, 3)),
            scales=rng.uniform(0.05, 0.2, 6),
            opacities=rng.uniform(0.2, 0.8, 6),
            colors=rng.uniform(0, 1, (6, 3)))
        aniso = AnisotropicCloud.from_isotropic(iso)
        assert np.allclose(aniso.scales[:, 0], iso.scales)
        assert np.allclose(aniso.scales[:, 1], iso.scales)
        assert np.allclose(aniso.quaternions[:, 0], 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AnisotropicCloud(np.zeros((3, 3)), np.zeros((3, 2)),
                             np.zeros((3, 4)), np.zeros(3), np.zeros((3, 3)))


class TestProjection:
    def test_conic_inverts_cov2d(self):
        cloud = make_aniso(seed=4)
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        proj = project_anisotropic(cloud, cam)
        for m in range(len(proj)):
            C = np.array([[proj.conic[m, 0], proj.conic[m, 1]],
                          [proj.conic[m, 1], proj.conic[m, 2]]])
            assert np.allclose(C @ proj.cov2d[m], np.eye(2), atol=1e-6)

    def test_blur_dilates(self):
        cloud = make_aniso(seed=5)
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        sharp = project_anisotropic(cloud, cam, blur=0.0)
        soft = project_anisotropic(cloud, cam, blur=0.3)
        assert np.all(soft.cov2d[:, 0, 0] >= sharp.cov2d[:, 0, 0])

    def test_culls_behind(self):
        cloud = AnisotropicCloud.create(
            means=np.array([[0.0, 0.0, -2.0]]),
            scales=np.full((1, 3), 0.1),
            quaternions=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([0.5]),
            colors=np.zeros((1, 3)))
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        assert len(project_anisotropic(cloud, cam)) == 0


class TestIsotropicEquivalence:
    @given(st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_matches_isotropic_pipeline_on_axis(self, seed):
        """With equal per-axis scales and blur=0, the two renderers use
        different footprint approximations — the isotropic path assumes a
        circular screen splat of sigma = f*s/z, while EWA carries the
        perspective shear terms of J.  The shear vanishes on the optical
        axis, so on-axis scenes must agree tightly."""
        rng = np.random.default_rng(seed)
        n = 25
        z = rng.uniform(1.5, 4, n)
        # |x/z|, |y/z| < 0.08: near the optical axis, negligible shear.
        means = np.stack([rng.uniform(-0.08, 0.08, n) * z,
                          rng.uniform(-0.08, 0.08, n) * z, z], axis=-1)
        s = rng.uniform(0.05, 0.2, n)
        opac = rng.uniform(0.2, 0.9, n)
        colors = rng.uniform(0, 1, (n, 3))
        iso = GaussianCloud.create(means, s, opac, colors)
        aniso = AnisotropicCloud.from_isotropic(iso)
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        # Pixels near the image centre.
        px = np.stack([rng.integers(12, 20, 10),
                       rng.integers(8, 16, 10)], -1)
        a = render_sparse(iso, cam, px, BG)
        b = render_sparse_anisotropic(aniso, cam, px, BG)
        # The residual shear at |x/z| < 0.08 bounds the footprint mismatch
        # near 6e-3 (seed 196 reaches 5.9e-3 on the silhouette).
        assert np.allclose(a.color, b.color, atol=8e-3)
        assert np.allclose(a.silhouette, b.silhouette, atol=8e-3)

    def test_off_axis_divergence_is_bounded(self):
        """Off-axis, the two approximations differ but stay close: this
        pins the expected magnitude so regressions are visible."""
        rng = np.random.default_rng(42)
        n = 40
        means = np.stack([rng.uniform(-1, 1, n), rng.uniform(-0.8, 0.8, n),
                          rng.uniform(1.2, 4, n)], axis=-1)
        s = rng.uniform(0.05, 0.25, n)
        iso = GaussianCloud.create(means, s, rng.uniform(0.2, 0.9, n),
                                   rng.uniform(0, 1, (n, 3)))
        aniso = AnisotropicCloud.from_isotropic(iso)
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        px = np.stack([rng.integers(0, 32, 20), rng.integers(0, 24, 20)], -1)
        a = render_sparse(iso, cam, px, BG)
        b = render_sparse_anisotropic(aniso, cam, px, BG)
        assert np.abs(a.color - b.color).max() < 0.15


class TestGradients:
    def test_all_parameters_match_numerical(self):
        cloud = make_aniso(seed=6)
        cam = Camera(Intrinsics.from_fov(24, 18, 70.0))
        rng = np.random.default_rng(0)
        px = np.stack([rng.integers(0, 24, 12), rng.integers(0, 18, 12)], -1)
        res = render_sparse_anisotropic(cloud, cam, px, BG)
        wc = rng.normal(size=res.color.shape)
        wd = rng.normal(size=res.depth.shape)
        ws = rng.normal(size=res.silhouette.shape)

        def loss(cl):
            r = render_sparse_anisotropic(cl, cam, px, BG)
            return float((r.color * wc).sum() + (r.depth * wd).sum()
                         + (r.silhouette * ws).sum())

        g = backward_sparse_anisotropic(res, cloud, cam, wc, wd, ws)
        an = g.as_cloud_vector()
        vec = cloud.pack()
        eps = 1e-6
        for i in rng.choice(len(vec), 40, replace=False):
            vp, vm = vec.copy(), vec.copy()
            vp[i] += eps
            vm[i] -= eps
            num = (loss(cloud.unpack(vp)) - loss(cloud.unpack(vm))) / (2 * eps)
            assert abs(num - an[i]) / (abs(num) + abs(an[i]) + 1e-5) < 1e-3

    def test_translation_twist_matches_numerical(self):
        cloud = make_aniso(seed=7)
        cam = Camera(Intrinsics.from_fov(24, 18, 70.0))
        rng = np.random.default_rng(1)
        px = np.stack([rng.integers(0, 24, 10), rng.integers(0, 18, 10)], -1)
        res = render_sparse_anisotropic(cloud, cam, px, BG)
        wc = rng.normal(size=res.color.shape)
        wd = rng.normal(size=res.depth.shape)
        ws = rng.normal(size=res.silhouette.shape)
        g = backward_sparse_anisotropic(res, cloud, cam, wc, wd, ws)

        def loss(camera):
            r = render_sparse_anisotropic(cloud, camera, px, BG)
            return float((r.color * wc).sum() + (r.depth * wd).sum()
                         + (r.silhouette * ws).sum())

        eps = 1e-6
        for j in range(3):  # translation components are exact
            xi = np.zeros(6)
            xi[j] = eps
            num = (loss(cam.with_pose(cam.pose_c2w @ se3_exp(xi)))
                   - loss(cam.with_pose(cam.pose_c2w @ se3_exp(-xi)))) / (2 * eps)
            an = g.d_pose_twist[j]
            assert abs(num - an) / (abs(num) + abs(an) + 1e-5) < 1e-3

    def test_stats_populated(self):
        cloud = make_aniso(seed=8)
        cam = Camera(Intrinsics.from_fov(24, 18, 70.0))
        px = np.array([[5, 5], [12, 9]])
        res = render_sparse_anisotropic(cloud, cam, px, BG)
        assert res.stats.pipeline == "pixel"
        assert res.stats.num_pixels == 2
        g = backward_sparse_anisotropic(res, cloud, cam,
                                        np.ones((2, 3)), np.zeros(2),
                                        np.zeros(2))
        assert g.stats.num_atomic_adds == g.stats.num_contrib_pairs
