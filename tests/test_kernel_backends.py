"""Kernel-backend equivalence: the vectorized sparse kernels must be
bit-identical to the reference per-pixel loop — outputs, gradients, stats
counters, and per-item record streams — across every pipeline switch."""

import numpy as np
import pytest

from repro.core import sample_tracking_pixels
from repro.core.pixel_pipeline import (
    backward_sparse,
    bbox_candidate_ranges,
    render_sparse,
)
from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.hw import ExpLUT
from repro.render.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    get_kernel,
    resolve_backend,
)
from repro.render.kernels.candidates import (
    candidate_pairs,
    chunked_candidate_pairs,
    is_tile_lattice,
    lattice_candidate_pairs,
)
from repro.render.projection import project_gaussians

BG = np.array([0.15, 0.25, 0.05])
W, H = 48, 36
GRAD_FIELDS = ("d_means", "d_log_scales", "d_logit_opacities", "d_colors",
               "d_pose_twist")


def make_scene(n=120, seed=0, opacity_hi=0.95):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-2, 2, n), rng.uniform(-1.5, 1.5, n),
                        rng.uniform(1.0, 5.0, n)], axis=-1),
        scales=rng.uniform(0.03, 0.3, n),
        opacities=rng.uniform(0.1, opacity_hi, n),
        colors=rng.uniform(0, 1, (n, 3)),
    )
    return cloud, Camera(Intrinsics.from_fov(W, H, 75.0))


def random_pixels(seed=0, k=40):
    rng = np.random.default_rng(seed)
    return np.stack([rng.integers(0, W, k), rng.integers(0, H, k)], axis=-1)


def lattice_pixels(tile=4, seed=0):
    return sample_tracking_pixels(W, H, tile, "random",
                                  np.random.default_rng(seed))


def render_both(cloud, cam, pixels, **kwargs):
    ref = render_sparse(cloud, cam, pixels, BG, backend="reference", **kwargs)
    vec = render_sparse(cloud, cam, pixels, BG, backend="vectorized", **kwargs)
    return ref, vec


def assert_forward_identical(ref, vec):
    assert np.array_equal(ref.color, vec.color)
    assert np.array_equal(ref.depth, vec.depth)
    assert np.array_equal(ref.silhouette, vec.silhouette)
    assert len(ref.pixel_lists) == len(vec.pixel_lists)
    for a, b in zip(ref.pixel_lists, vec.pixel_lists):
        assert np.array_equal(a, b)
    assert ref.stats.as_dict() == vec.stats.as_dict()
    assert ref.stats.pixel_list_lengths == vec.stats.pixel_list_lengths
    assert ref.stats.per_pixel_contribs == vec.stats.per_pixel_contribs


def backward_both(ref, vec, cloud, cam, seed=0):
    rng = np.random.default_rng(seed)
    d_color = rng.normal(size=ref.color.shape)
    d_depth = rng.normal(size=ref.depth.shape)
    d_sil = rng.normal(size=ref.silhouette.shape)
    g_ref = backward_sparse(ref, cloud, cam, d_color, d_depth, d_sil)
    g_vec = backward_sparse(vec, cloud, cam, d_color, d_depth, d_sil)
    return g_ref, g_vec


def assert_backward_identical(g_ref, g_vec):
    for name in GRAD_FIELDS:
        assert np.array_equal(getattr(g_ref, name), getattr(g_vec, name)), name
    assert g_ref.stats.as_dict() == g_vec.stats.as_dict()
    assert g_ref.stats.pixel_list_lengths == g_vec.stats.pixel_list_lengths
    assert g_ref.stats.per_pixel_contribs == g_vec.stats.per_pixel_contribs
    assert len(g_ref.stats.pixel_contrib_ids) == len(g_vec.stats.pixel_contrib_ids)
    for a, b in zip(g_ref.stats.pixel_contrib_ids, g_vec.stats.pixel_contrib_ids):
        assert np.array_equal(a, b)


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(available_backends()) >= {"reference", "vectorized",
                                             "parallel"}

    def test_only_parallel_accepts_workers(self):
        assert get_kernel("parallel").accepts_workers
        assert not get_kernel("reference").accepts_workers
        assert not get_kernel("vectorized").accepts_workers

    def test_default_is_reference(self):
        assert DEFAULT_BACKEND == "reference"
        assert resolve_backend(None) in available_backends()

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert resolve_backend("reference") == "reference"
        assert resolve_backend(None) == "vectorized"

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None) == DEFAULT_BACKEND
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert get_kernel().name == "vectorized"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_result_records_backend(self):
        cloud, cam = make_scene()
        ref, vec = render_both(cloud, cam, random_pixels())
        assert ref.backend == "reference" and ref.flat_cache is None
        assert vec.backend == "vectorized" and vec.flat_cache is not None


class TestCandidateGenerators:
    def test_lattice_matches_chunked(self):
        cloud, cam = make_scene(seed=3)
        proj = project_gaussians(cloud, cam)
        pixels = lattice_pixels(tile=4)
        assert is_tile_lattice(pixels, 4, W)
        lat = lattice_candidate_pairs(pixels, proj.bbox(), 4, W)
        chk = chunked_candidate_pairs(pixels + 0.5, proj.bbox())
        assert np.array_equal(lat.pix, chk.pix)
        assert np.array_equal(lat.gss, chk.gss)

    def test_chunking_invariant(self):
        cloud, cam = make_scene(seed=5)
        proj = project_gaussians(cloud, cam)
        centres = random_pixels(seed=5, k=30) + 0.5
        one = chunked_candidate_pairs(centres, proj.bbox())
        many = chunked_candidate_pairs(centres, proj.bbox(), chunk_pairs=64)
        assert np.array_equal(one.pix, many.pix)
        assert np.array_equal(one.gss, many.gss)

    def test_non_lattice_hint_falls_back(self):
        """A wrong lattice hint must not change the pair set."""
        cloud, cam = make_scene(seed=6)
        proj = project_gaussians(cloud, cam)
        pixels = random_pixels(seed=6, k=25)
        assert not is_tile_lattice(pixels, 4, W)
        hinted = candidate_pairs(pixels, pixels + 0.5, proj.bbox(),
                                 lattice_tile=4, width=W)
        plain = candidate_pairs(pixels, pixels + 0.5, proj.bbox())
        assert np.array_equal(hinted.pix, plain.pix)
        assert np.array_equal(hinted.gss, plain.gss)

    def test_bbox_candidate_ranges_matches_scan(self):
        cloud, cam = make_scene(seed=7)
        proj = project_gaussians(cloud, cam)
        bbox = proj.bbox()
        pixels = lattice_pixels(tile=8, seed=7)
        ranges = bbox_candidate_ranges(pixels, bbox, 8, W)
        assert len(ranges) == len(proj)
        centres = pixels + 0.5
        for g, got in enumerate(ranges):
            inside = ((bbox[g, 0] <= centres[:, 0])
                      & (centres[:, 0] <= bbox[g, 2])
                      & (bbox[g, 1] <= centres[:, 1])
                      & (centres[:, 1] <= bbox[g, 3]))
            assert np.array_equal(np.sort(got), np.nonzero(inside)[0])


class TestForwardEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_pixels(self, seed):
        cloud, cam = make_scene(seed=seed)
        ref, vec = render_both(cloud, cam, random_pixels(seed))
        assert_forward_identical(ref, vec)

    def test_lattice_pixels_with_hint(self):
        cloud, cam = make_scene(seed=4)
        ref, vec = render_both(cloud, cam, lattice_pixels(), lattice_tile=4)
        assert_forward_identical(ref, vec)

    def test_preemptive_alpha_off(self):
        cloud, cam = make_scene(seed=2)
        ref, vec = render_both(cloud, cam, random_pixels(2),
                               preemptive_alpha=False)
        assert_forward_identical(ref, vec)

    def test_lut_exp_fn(self):
        cloud, cam = make_scene(seed=8)
        lut = ExpLUT(64)
        ref, vec = render_both(cloud, cam, random_pixels(8),
                               exp_fn=lambda x: lut(-np.asarray(x)))
        assert_forward_identical(ref, vec)

    def test_early_termination_boundary(self):
        """Opaque stacked Gaussians drive Γ through t_min; the alive mask
        must cut both backends at the same list position."""
        n = 40
        rng = np.random.default_rng(11)
        cloud = GaussianCloud.create(
            means=np.stack([rng.normal(0, 0.05, n), rng.normal(0, 0.05, n),
                            rng.uniform(1.0, 3.0, n)], axis=-1),
            scales=np.full(n, 0.5),
            opacities=np.full(n, 0.93),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        ref, vec = render_both(cloud, cam, random_pixels(11))
        assert ref.stats.num_contrib_pairs < ref.stats.num_sort_keys
        assert_forward_identical(ref, vec)

    def test_empty_pixels(self):
        cloud, cam = make_scene()
        ref, vec = render_both(cloud, cam, np.zeros((0, 2), dtype=int))
        assert ref.color.shape == vec.color.shape == (0, 3)
        assert ref.stats.as_dict() == vec.stats.as_dict()

    def test_empty_cloud(self):
        cloud = GaussianCloud.create(
            means=np.zeros((0, 3)), scales=np.zeros(0),
            opacities=np.zeros(0), colors=np.zeros((0, 3)))
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        ref, vec = render_both(cloud, cam, random_pixels())
        assert_forward_identical(ref, vec)
        assert np.allclose(ref.color, BG)

    def test_offscreen_cloud(self):
        """All Gaussians behind the camera: pairs exist for no pixel."""
        cloud, cam = make_scene(seed=9)
        cloud = GaussianCloud.create(
            means=cloud.means * np.array([1.0, 1.0, -1.0]),
            scales=cloud.scales, opacities=cloud.opacities,
            colors=cloud.colors)
        ref, vec = render_both(cloud, cam, random_pixels(9))
        assert_forward_identical(ref, vec)


class TestBackwardEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradients_bit_identical(self, seed):
        cloud, cam = make_scene(seed=seed)
        ref, vec = render_both(cloud, cam, random_pixels(seed))
        g_ref, g_vec = backward_both(ref, vec, cloud, cam, seed)
        assert_backward_identical(g_ref, g_vec)

    def test_gradients_lattice_hint(self):
        cloud, cam = make_scene(seed=4)
        ref, vec = render_both(cloud, cam, lattice_pixels(), lattice_tile=4)
        g_ref, g_vec = backward_both(ref, vec, cloud, cam, 4)
        assert_backward_identical(g_ref, g_vec)

    def test_gradients_preemptive_off(self):
        cloud, cam = make_scene(seed=5)
        ref, vec = render_both(cloud, cam, random_pixels(5),
                               preemptive_alpha=False)
        g_ref, g_vec = backward_both(ref, vec, cloud, cam, 5)
        assert_backward_identical(g_ref, g_vec)

    def test_gradients_early_termination(self):
        n = 30
        rng = np.random.default_rng(13)
        cloud = GaussianCloud.create(
            means=np.stack([rng.normal(0, 0.05, n), rng.normal(0, 0.05, n),
                            rng.uniform(1.0, 3.0, n)], axis=-1),
            scales=np.full(n, 0.5),
            opacities=np.full(n, 0.93),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        ref, vec = render_both(cloud, cam, random_pixels(13))
        g_ref, g_vec = backward_both(ref, vec, cloud, cam, 13)
        assert_backward_identical(g_ref, g_vec)

    def test_keep_cache_false_yields_zero_grads(self):
        cloud, cam = make_scene(seed=6)
        ref, vec = render_both(cloud, cam, random_pixels(6),
                               keep_cache=False)
        g_ref, g_vec = backward_both(ref, vec, cloud, cam, 6)
        assert_backward_identical(g_ref, g_vec)
        for name in GRAD_FIELDS:
            assert not np.any(getattr(g_ref, name))


class TestRecordFlag:
    def test_records_off_keeps_scalars(self):
        cloud, cam = make_scene(seed=1)
        pixels = random_pixels(1)
        for backend in ("reference", "vectorized"):
            on = render_sparse(cloud, cam, pixels, BG, backend=backend,
                               record_per_pixel=True)
            off = render_sparse(cloud, cam, pixels, BG, backend=backend,
                                record_per_pixel=False)
            assert on.stats.as_dict() == off.stats.as_dict()
            assert on.stats.pixel_list_lengths
            assert off.stats.pixel_list_lengths == []
            assert off.stats.per_pixel_contribs == []
            d = np.ones_like(on.color), np.ones_like(on.depth), \
                np.ones_like(on.silhouette)
            g_on = backward_sparse(on, cloud, cam, *d)
            g_off = backward_sparse(off, cloud, cam, *d)
            assert g_on.stats.as_dict() == g_off.stats.as_dict()
            assert g_off.stats.pixel_contrib_ids == []
            for name in GRAD_FIELDS:
                assert np.array_equal(getattr(g_on, name),
                                      getattr(g_off, name))

    def test_records_off_dense_pipeline(self):
        from repro.render import backward_full, render_full

        cloud, cam = make_scene(seed=2)
        on = render_full(cloud, cam, BG, record_per_pixel=True)
        off = render_full(cloud, cam, BG, record_per_pixel=False)
        assert np.array_equal(on.color, off.color)
        assert on.stats.as_dict() == off.stats.as_dict()
        assert on.stats.tile_work and off.stats.tile_work == []
        d = (np.ones_like(on.color), np.ones_like(on.depth),
             np.ones_like(on.silhouette))
        g_on = backward_full(on, cloud, cam, *d)
        g_off = backward_full(off, cloud, cam, *d)
        assert g_on.stats.as_dict() == g_off.stats.as_dict()
        assert g_off.stats.pixel_contrib_ids == []


def render_parallel_pair(cloud, cam, pixels, workers, **kwargs):
    vec = render_sparse(cloud, cam, pixels, BG, backend="vectorized",
                        **kwargs)
    par = render_sparse(cloud, cam, pixels, BG, backend="parallel",
                        kernel_workers=workers, **kwargs)
    return vec, par


class TestParallelBackend:
    """The sharded `parallel` backend must be bit-identical to the
    vectorized kernel it decomposes — outputs, gradients, stats counters,
    and per-item record streams — at every worker count (the per-shard
    lexsorts are exact sub-sequences of the global pixel-major sort, and
    the parent replays the exact global scatter order)."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_forward_identical(self, workers, seed):
        cloud, cam = make_scene(seed=seed)
        vec, par = render_parallel_pair(cloud, cam, random_pixels(seed),
                                        workers, record_per_pixel=True)
        assert par.backend == "parallel"
        assert_forward_identical(vec, par)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradients_identical(self, workers, seed):
        cloud, cam = make_scene(seed=seed)
        vec, par = render_parallel_pair(cloud, cam, random_pixels(seed),
                                        workers, record_per_pixel=True)
        g_vec, g_par = backward_both(vec, par, cloud, cam, seed)
        assert_backward_identical(g_vec, g_par)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_lattice_pixels(self, workers):
        cloud, cam = make_scene(seed=4)
        vec, par = render_parallel_pair(cloud, cam, lattice_pixels(),
                                        workers, lattice_tile=4)
        assert_forward_identical(vec, par)
        g_vec, g_par = backward_both(vec, par, cloud, cam, 4)
        assert_backward_identical(g_vec, g_par)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_empty_pixel_set(self, workers):
        cloud, cam = make_scene()
        vec, par = render_parallel_pair(cloud, cam,
                                        np.zeros((0, 2), dtype=int), workers)
        assert par.color.shape == (0, 3)
        assert vec.stats.as_dict() == par.stats.as_dict()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_single_pixel(self, workers):
        cloud, cam = make_scene(seed=3)
        vec, par = render_parallel_pair(cloud, cam, random_pixels(3, k=1),
                                        workers, record_per_pixel=True)
        assert_forward_identical(vec, par)
        g_vec, g_par = backward_both(vec, par, cloud, cam, 3)
        assert_backward_identical(g_vec, g_par)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_early_termination(self, workers):
        n = 40
        rng = np.random.default_rng(11)
        cloud = GaussianCloud.create(
            means=np.stack([rng.normal(0, 0.05, n), rng.normal(0, 0.05, n),
                            rng.uniform(1.0, 3.0, n)], axis=-1),
            scales=np.full(n, 0.5),
            opacities=np.full(n, 0.93),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        vec, par = render_parallel_pair(cloud, cam, random_pixels(11),
                                        workers)
        assert_forward_identical(vec, par)
        g_vec, g_par = backward_both(vec, par, cloud, cam, 11)
        assert_backward_identical(g_vec, g_par)

    def test_single_worker_falls_back_to_vectorized_cache(self):
        from repro.render.kernels.parallel import ShardedCompositeCache

        cloud, cam = make_scene(seed=5)
        one = render_sparse(cloud, cam, random_pixels(5), BG,
                            backend="parallel", kernel_workers=1)
        four = render_sparse(cloud, cam, random_pixels(5), BG,
                             backend="parallel", kernel_workers=4)
        assert not isinstance(one.flat_cache, ShardedCompositeCache)
        assert isinstance(four.flat_cache, ShardedCompositeCache)

    def test_worker_pool_persists_across_renders(self):
        from repro.render.kernels.parallel import _get_pool

        cloud, cam = make_scene(seed=6)
        pool_before = _get_pool(2)
        for seed in (6, 7):
            render_sparse(cloud, cam, random_pixels(seed), BG,
                          backend="parallel", kernel_workers=2)
        assert _get_pool(2) is pool_before

    def test_resolve_workers_precedence(self, monkeypatch):
        from repro.render.kernels.parallel import (
            ENV_WORKERS,
            MAX_WORKERS,
            resolve_workers,
        )

        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 1          # clamped low
        assert resolve_workers(10 ** 6) == MAX_WORKERS
        monkeypatch.setenv(ENV_WORKERS, "5")
        assert resolve_workers(None) == 5
        assert resolve_workers(2) == 2          # explicit beats env
        monkeypatch.setenv(ENV_WORKERS, "not-a-number")
        assert resolve_workers(None) >= 1       # falls back to cpu count

    def test_shard_spans_land_in_parent_trace(self):
        from repro.obs import trace

        cloud, cam = make_scene(seed=8)
        with trace.capture():
            result = render_sparse(cloud, cam, random_pixels(8), BG,
                                   backend="parallel", kernel_workers=4)
            backward_sparse(result, cloud, cam,
                            np.ones_like(result.color),
                            np.ones_like(result.depth),
                            np.ones_like(result.silhouette))
            records = trace.records
        fwd = [r for r in records if r.name == "render.shard_fwd"]
        bwd = [r for r in records if r.name == "render.shard_bwd"]
        assert fwd and bwd
        assert {r.attrs["worker"] for r in fwd} == set(range(len(fwd)))
        for r in fwd + bwd:
            assert r.attrs["backend"] == "parallel"
            assert r.attrs["pixels"] > 0


class TestSLAMEquivalence:
    def test_trajectories_identical_across_backends(self):
        from repro.datasets import make_replica_sequence
        from repro.slam import SLAMSystem

        sequence = make_replica_sequence("room0", n_frames=4, width=32,
                                         height=24)
        results = {}
        for backend in ("reference", "vectorized", "parallel"):
            system = SLAMSystem("splatam", mode="sparse", seed=0,
                                kernel_backend=backend,
                                kernel_workers=2)
            results[backend] = system.run(sequence)
        ref = results["reference"]
        for other in ("vectorized", "parallel"):
            vec = results[other]
            assert np.array_equal(ref.est_trajectory, vec.est_trajectory)
            assert len(ref.cloud) == len(vec.cloud)
            assert np.array_equal(ref.cloud.means, vec.cloud.means)
            for stage in ("tracking_fwd", "tracking_bwd",
                          "mapping_fwd", "mapping_bwd"):
                assert (ref.stage_stats[stage].as_dict()
                        == vec.stage_stats[stage].as_dict())

    def test_atlas_artifact_bit_identical_across_backends(self):
        """Same run, either backend -> the same atlas artifact bytes."""
        from repro.datasets import make_replica_sequence
        from repro.obs.atlas import AtlasCollector
        from repro.slam import SLAMSystem

        sequence = make_replica_sequence("room0", n_frames=4, width=32,
                                         height=24)
        blobs = {}
        for backend in ("reference", "vectorized"):
            collector = AtlasCollector(tile=8)
            collector.enable()
            system = SLAMSystem("splatam", mode="sparse", seed=0,
                                kernel_backend=backend)
            system.run(sequence, atlas=collector)
            collector.disable()
            blobs[backend] = collector.to_bytes()
        assert blobs["reference"] == blobs["vectorized"]
        assert len(blobs["reference"]) > 0
