"""Tests for the observability layer: tracer, metrics registry, logger.

Covers span nesting/ordering/attributes, the disabled-mode fast path,
Chrome trace-event export, deterministic metrics export, the stats
bridges, and the instrumented SLAM loop (the four paper stages must
appear as spans in a traced run).
"""

import json
import logging
import time

import numpy as np
import pytest

from repro.datasets import make_replica_sequence
from repro.obs import (MetricsRegistry, Tracer, configure, get_logger,
                       ingest_pipeline_stats, metrics, trace)
from repro.obs.log import verbosity_to_level
from repro.obs.tracing import _NULL_SPAN
from repro.render.stats import PipelineStats
from repro.slam import SLAMSystem


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------

def test_span_nesting_and_order():
    t = Tracer(enabled=True)
    with t.span("outer", frame=3):
        with t.span("inner_a"):
            pass
        with t.span("inner_b"):
            pass
    names = [r.name for r in t.records]
    # Records are appended at span *completion*: children before parent.
    assert names == ["inner_a", "inner_b", "outer"]
    depths = {r.name: r.depth for r in t.records}
    assert depths == {"outer": 0, "inner_a": 1, "inner_b": 1}
    outer = t.records[-1]
    assert outer.attrs == {"frame": 3}


def test_span_self_time_excludes_children():
    t = Tracer(enabled=True)
    with t.span("parent"):
        with t.span("child"):
            time.sleep(0.005)
    parent = next(r for r in t.records if r.name == "parent")
    child = next(r for r in t.records if r.name == "child")
    assert parent.duration >= child.duration
    assert parent.self_time == pytest.approx(
        parent.duration - child.duration, abs=1e-9)
    assert parent.self_time < parent.duration


def test_span_set_attaches_attributes():
    t = Tracer(enabled=True)
    with t.span("track", frame=1) as sp:
        sp.set(iterations=7, converged=True)
    rec = t.records[0]
    assert rec.attrs == {"frame": 1, "iterations": 7, "converged": True}


def test_span_exception_unwinds_stack():
    t = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with t.span("outer"):
            with t.span("inner"):
                raise ValueError("boom")
    # Both spans recorded despite the exception; the stack is clean.
    assert [r.name for r in t.records] == ["inner", "outer"]
    with t.span("after"):
        pass
    assert t.records[-1].depth == 0


def test_disabled_tracer_records_nothing_and_allocates_nothing():
    t = Tracer()
    assert not t.enabled
    spans = [t.span("hot", i=i) for i in range(8)]
    # Disabled span() returns one shared singleton — no per-call object.
    assert all(s is spans[0] for s in spans)
    with spans[0]:
        pass
    assert t.records == []
    assert isinstance(spans[0], type(_NULL_SPAN))


def test_capture_restores_prior_state():
    t = Tracer()
    with t.capture():
        assert t.enabled
        with t.span("in_capture"):
            pass
    assert not t.enabled
    assert t.span_names() == ["in_capture"]
    # capture(reset=True) clears the previous capture's records.
    with t.capture():
        pass
    assert t.records == []


def test_chrome_trace_schema(tmp_path):
    t = Tracer(enabled=True)
    with t.span("a", frame=0, note=np.int64(5)):
        with t.span("b"):
            pass
    path = tmp_path / "trace.json"
    n = t.write_chrome_trace(str(path))
    assert n == 2
    events = json.loads(path.read_text())
    assert isinstance(events, list) and len(events) == 2
    for ev in events:
        assert set(ev) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert ev["ph"] == "X"
        assert isinstance(ev["ts"], float) and isinstance(ev["dur"], float)
    # Start-ordered: the parent "a" opened before its child "b".
    assert [ev["name"] for ev in events] == ["a", "b"]
    # numpy attr values are coerced to plain JSON scalars.
    assert events[0]["args"] == {"frame": 0, "note": 5}


def test_stage_table_and_summary():
    t = Tracer(enabled=True)
    for _ in range(3):
        with t.span("stage_x"):
            pass
    with t.span("stage_y"):
        time.sleep(0.002)
    table = {row["span"]: row for row in t.stage_table()}
    assert table["stage_x"]["count"] == 3
    assert table["stage_y"]["total_s"] >= 0.002
    text = t.format_summary("demo")
    assert "### demo" in text
    assert "stage_x" in text and "stage_y" in text
    # Empty tracer still renders a valid table.
    assert "(no spans recorded)" in Tracer().format_summary()


# ---------------------------------------------------------------------------
# Metrics registry + bridges
# ---------------------------------------------------------------------------

def test_registry_instruments_and_deterministic_export():
    reg = MetricsRegistry()
    reg.inc("b.count", 2)
    reg.inc("a.count")
    reg.inc("b.count", 3)
    reg.set_gauge("a.rate", 0.5)
    reg.observe("lat", 1.0)
    reg.observe("lat", 3.0)
    out = reg.export()
    assert list(out["counters"]) == ["a.count", "b.count"]
    assert out["counters"]["b.count"] == 5
    assert out["histograms"]["lat"] == {
        "count": 2, "sum": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0}
    # Two exports of identical state serialize byte-identically.
    assert json.dumps(out, sort_keys=True) == json.dumps(
        reg.export(), sort_keys=True)
    reg.reset()
    assert reg.export()["counters"] == {}


def test_registry_warn_records_and_logs(capsys):
    configure(verbosity=0)  # route repro.* logs to the current stdout
    reg = MetricsRegistry()
    reg.warn("something odd")
    assert reg.warnings == ["something odd"]
    assert "something odd" in capsys.readouterr().out


def test_ingest_pipeline_stats_bridge():
    stats = PipelineStats(pipeline="pixel", num_pixels=10,
                          num_candidate_pairs=40, num_contrib_pairs=20,
                          per_pixel_contribs=[2] * 10)
    reg = MetricsRegistry()
    ingest_pipeline_stats("tracking_fwd", stats, reg)
    assert reg.counters["tracking_fwd.num_pixels"] == 10
    assert reg.counters["tracking_fwd.num_candidate_pairs"] == 40
    assert reg.gauges["tracking_fwd.alpha_pass_rate"] == pytest.approx(0.5)
    assert "tracking_fwd.warp_utilization" in reg.gauges
    # Ingesting again accumulates counters (monotonic across passes).
    ingest_pipeline_stats("tracking_fwd", stats, reg)
    assert reg.counters["tracking_fwd.num_pixels"] == 20


def test_pipeline_stats_as_dict_and_summary():
    stats = PipelineStats(pipeline="tile", tile_size=8, num_pixels=4,
                          num_candidate_pairs=8, num_contrib_pairs=4,
                          num_sort_keys=6, num_atomic_adds=2,
                          per_pixel_contribs=[1, 1, 1, 1])
    d = stats.as_dict()
    assert d["pipeline"] == "tile" and d["num_sort_keys"] == 6
    assert "per_pixel_contribs" not in d  # replay lists stay out
    json.dumps(d)  # JSON-ready
    s = stats.summary()
    assert s["alpha_pass_rate"] == pytest.approx(0.5)
    assert s["candidate_pairs_per_pixel"] == pytest.approx(2.0)
    assert s["atomic_adds_per_pixel"] == pytest.approx(0.5)
    # Empty stats must not divide by zero.
    json.dumps(PipelineStats().summary())


# ---------------------------------------------------------------------------
# Logger
# ---------------------------------------------------------------------------

def test_verbosity_mapping():
    assert verbosity_to_level(-3) == logging.ERROR
    assert verbosity_to_level(-1) == logging.WARNING
    assert verbosity_to_level(0) == logging.INFO
    assert verbosity_to_level(2) == logging.DEBUG


def test_configure_single_handler_and_namespace(capsys):
    configure(verbosity=0)
    configure(verbosity=0)  # repeated configure must not double-print
    log = get_logger("cli")
    assert log.name == "repro.cli"
    log.info("hello once")
    log.debug("hidden at default verbosity")
    out = capsys.readouterr().out
    assert out.count("hello once") == 1
    assert "hidden" not in out


# ---------------------------------------------------------------------------
# Instrumented SLAM loop
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def traced_run():
    sequence = make_replica_sequence("room0", n_frames=3, width=32, height=24)
    tracer_snapshot = {}
    with trace.capture():
        result = SLAMSystem("splatam", mode="sparse", seed=0).run(sequence)
        tracer_snapshot["names"] = set(trace.span_names())
        tracer_snapshot["records"] = trace.records
        tracer_snapshot["events"] = trace.to_chrome_trace()
    return result, tracer_snapshot


def test_slam_run_emits_stage_spans(traced_run):
    _, snap = traced_run
    for stage in ("tracking_fwd", "tracking_bwd", "mapping_fwd",
                  "mapping_bwd"):
        assert stage in snap["names"], f"missing span {stage}"
    assert "slam.run" in snap["names"]
    assert "render.composite" in snap["names"]
    # The whole run nests under the root slam.run span.
    root = [r for r in snap["records"] if r.name == "slam.run"]
    assert len(root) == 1 and root[0].depth == 0
    assert json.dumps(snap["events"])  # full run is JSON-serializable


def test_eval_quality_reports_frames_evaluated():
    sequence = make_replica_sequence("room0", n_frames=3, width=32, height=24)
    result = SLAMSystem("splatam", mode="sparse", seed=0).run(sequence)
    scores = result.eval_quality(sequence, every=2)
    assert scores["frames_evaluated"] == 2
    assert np.isfinite(scores["psnr"])


def test_eval_quality_empty_sampling_is_guarded():
    sequence = make_replica_sequence("room0", n_frames=3, width=32, height=24)
    result = SLAMSystem("splatam", mode="sparse", seed=0).run(sequence)
    result.num_frames = 0  # nothing to sample: the NaN-mean trap
    before = len(metrics.warnings)
    scores = result.eval_quality(sequence, every=4)
    assert scores["frames_evaluated"] == 0
    assert scores["psnr"] == 0.0 and scores["ssim"] == 0.0
    assert not any(np.isnan(v) for v in scores.values())
    assert len(metrics.warnings) == before + 1
    assert "eval_quality" in metrics.warnings[-1]


def test_disabled_tracing_overhead_is_negligible():
    t = Tracer()

    def loop(n):
        start = time.perf_counter()
        acc = 0.0
        for i in range(n):
            sp = t.span("hot")
            acc += i * 1e-9
        return time.perf_counter() - start, acc

    loop(10_000)  # warm up
    elapsed, _ = loop(200_000)
    # 200k disabled span() calls in well under a second: the fast path is
    # one branch + a shared singleton return, nothing else.
    assert elapsed < 1.0
    assert t.records == []
