"""Adaptive pixel sampling: tracking strategies and the mapping sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MappingSamples,
    sample_mapping_pixels,
    sample_tracking_pixels,
    tile_origins,
    unseen_mask,
)
from repro.core.sampling import UNSEEN_TRANSMITTANCE

W, H = 64, 48


class TestTileOrigins:
    def test_counts(self):
        origins = tile_origins(W, H, 16)
        assert origins.shape == (4 * 3, 2)

    def test_partial_edge_tiles(self):
        origins = tile_origins(20, 10, 16)
        assert origins.shape == (2, 2)
        assert (16, 0) in [tuple(o) for o in origins]


class TestTrackingSampling:
    @pytest.mark.parametrize("strategy", ["random", "center", "lowres"])
    def test_one_pixel_per_tile(self, strategy):
        rng = np.random.default_rng(0)
        img = rng.uniform(0, 1, (H, W, 3))
        px = sample_tracking_pixels(W, H, 16, strategy, rng, image=img)
        assert px.shape == ((W // 16) * (H // 16), 2)
        tiles = set()
        for u, v in px:
            assert 0 <= u < W and 0 <= v < H
            t = (u // 16, v // 16)
            assert t not in tiles, "two samples in one tile"
            tiles.add(t)

    def test_harris_one_per_tile(self):
        rng = np.random.default_rng(1)
        img = rng.uniform(0, 1, (H, W, 3))
        px = sample_tracking_pixels(W, H, 16, "harris", rng, image=img)
        assert px.shape == (12, 2)

    def test_harris_requires_image(self):
        with pytest.raises(ValueError):
            sample_tracking_pixels(W, H, 16, "harris")

    def test_loss_tile_requires_loss_map(self):
        with pytest.raises(ValueError):
            sample_tracking_pixels(W, H, 16, "loss_tile")

    def test_loss_tile_budget_matches(self):
        """GauSPU-style selection renders the same number of pixels."""
        loss = np.zeros((H, W))
        loss[0:16, 0:16] = 5.0
        px = sample_tracking_pixels(W, H, 16, "loss_tile",
                                    loss_map=loss)
        assert len(px) == 12  # same budget as one-per-tile
        # All selected pixels concentrate in the high-loss tile first.
        assert np.all(px[:, 0] < 16) and np.all(px[:, 1] < 16)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            sample_tracking_pixels(W, H, 16, "bogus")

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            sample_tracking_pixels(W, H, 0)

    def test_tile_row_major_order(self):
        """Index k holds the pixel of tile (k % tiles_x, k // tiles_x)."""
        px = sample_tracking_pixels(W, H, 8, "random",
                                    np.random.default_rng(2))
        tiles_x = W // 8
        for k, (u, v) in enumerate(px):
            assert u // 8 == k % tiles_x
            assert v // 8 == k // tiles_x

    @given(st.integers(1, 40), st.integers(1, 40),
           st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=30, deadline=None)
    def test_property_bounds_and_count(self, w, h, tile):
        px = sample_tracking_pixels(w, h, tile, "random",
                                    np.random.default_rng(0))
        n_tiles = (-(-w // tile)) * (-(-h // tile))
        assert len(px) == n_tiles
        assert np.all((px[:, 0] >= 0) & (px[:, 0] < w))
        assert np.all((px[:, 1] >= 0) & (px[:, 1] < h))

    def test_random_is_seeded(self):
        a = sample_tracking_pixels(W, H, 8, "random",
                                   np.random.default_rng(7))
        b = sample_tracking_pixels(W, H, 8, "random",
                                   np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_reduction_factor(self):
        """w_t = 16 gives the paper's 256x pixel reduction."""
        px = sample_tracking_pixels(256, 256, 16, "random",
                                    np.random.default_rng(0))
        assert (256 * 256) // len(px) == 256


class TestUnseenMask:
    def test_eqn2_threshold(self):
        gamma = np.array([[0.4, 0.5, 0.51, 0.9]])
        mask = unseen_mask(gamma)
        assert list(mask[0]) == [False, False, True, True]

    def test_threshold_constant(self):
        assert UNSEEN_TRANSMITTANCE == 0.5


class TestMappingSampling:
    def _gamma_and_image(self, seed=0):
        rng = np.random.default_rng(seed)
        gamma = np.zeros((H, W))
        gamma[:, W // 2:] = 0.9          # right half unseen
        image = rng.uniform(0, 1, (H, W, 3))
        image[:, :W // 4] = 0.5           # flat left quarter (texture-poor)
        return gamma, image

    def test_unseen_set_matches_mask(self):
        gamma, image = self._gamma_and_image()
        s = sample_mapping_pixels(gamma, image, tile=4,
                                  rng=np.random.default_rng(0))
        assert len(s.unseen) == (W // 2) * H
        assert np.all(s.unseen[:, 0] >= W // 2)

    def test_weighted_one_per_tile(self):
        gamma, image = self._gamma_and_image()
        s = sample_mapping_pixels(gamma, image, tile=4,
                                  rng=np.random.default_rng(0))
        assert len(s.weighted) == (W // 4) * (H // 4)

    def test_texture_bias(self):
        """Within a tile that straddles a texture boundary, the weighted
        draw prefers the textured half (Eqn. 3)."""
        rng = np.random.default_rng(1)
        boundary = W // 2 + 4          # mid-tile for tile=8
        image = np.zeros((H, W, 3))
        image[:, boundary:] = rng.uniform(0, 1, (H, W - boundary, 3))
        gamma = np.zeros((H, W))
        hits_textured = 0
        total = 0
        for trial in range(6):
            s = sample_mapping_pixels(gamma, image, tile=8,
                                      rng=np.random.default_rng(trial))
            straddling = s.weighted[
                (s.weighted[:, 0] >= boundary - 4)
                & (s.weighted[:, 0] < boundary + 4)]
            hits_textured += int((straddling[:, 0] >= boundary - 1).sum())
            total += len(straddling)
        assert total > 0
        assert hits_textured > total * 0.6

    def test_ablation_switches(self):
        gamma, image = self._gamma_and_image()
        only_unseen = sample_mapping_pixels(
            gamma, image, include_weighted=False,
            rng=np.random.default_rng(0))
        assert len(only_unseen.weighted) == 0
        only_weighted = sample_mapping_pixels(
            gamma, image, include_unseen=False,
            rng=np.random.default_rng(0))
        assert len(only_weighted.unseen) == 0

    def test_all_pixels_union_unique(self):
        gamma, image = self._gamma_and_image()
        s = sample_mapping_pixels(gamma, image, tile=4,
                                  rng=np.random.default_rng(0))
        combined = s.all_pixels
        assert len(np.unique(combined, axis=0)) == len(combined)
        assert len(combined) <= len(s.unseen) + len(s.weighted)

    def test_all_pixels_empty(self):
        s = MappingSamples(unseen=np.zeros((0, 2), dtype=int),
                           weighted=np.zeros((0, 2), dtype=int))
        assert s.all_pixels.shape == (0, 2)

    def test_uniform_weights_mode(self):
        gamma, image = self._gamma_and_image()
        s = sample_mapping_pixels(gamma, image, tile=4, uniform_weights=True,
                                  rng=np.random.default_rng(0))
        assert len(s.weighted) == (W // 4) * (H // 4)
