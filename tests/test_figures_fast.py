"""Fast figure drivers exercised as unit tests (model-only, no SLAM runs)."""

import numpy as np
import pytest

from repro.bench import figures


class TestAreaTable:
    def test_rows_and_total(self):
        rows = figures.area_table()
        total = [r for r in rows if r["component"] == "TOTAL (16nm)"][0]
        parts = [r["area_mm2"] for r in rows
                 if "paper" not in r["component"]
                 and r["component"] != "TOTAL (16nm)"]
        assert np.isclose(sum(parts), total["area_mm2"])

    def test_comparison_entries_present(self):
        rows = figures.area_table()
        names = {r["component"] for r in rows}
        assert "gscore (paper)" in names
        assert "gsarch (paper)" in names


class TestLutAblation:
    @pytest.mark.slow
    def test_monotone_quality(self):
        rows = figures.ablation_lut(entries_list=(8, 32, 128))
        psnrs = [r["render_psnr_db"] for r in rows]
        assert psnrs == sorted(psnrs)

    def test_error_column_independent_of_bundle(self):
        from repro.hw import ExpLUT
        assert ExpLUT(64).max_abs_error(5000) < ExpLUT(8).max_abs_error(5000)


@pytest.mark.slow
class TestUnitSensitivity:
    def test_grid_shape(self):
        from repro.bench import build_bundle
        rows = figures.fig27_unit_sensitivity(
            projection_units=(2, 8), render_units=(2, 4),
            bundle=build_bundle())
        assert len(rows) == 4
        assert all(r["relative_performance"] > 0 for r in rows)
