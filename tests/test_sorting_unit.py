"""Hierarchical sorting-unit cycle model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HierarchicalSorter, SortingUnitConfig


class TestConfig:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            SortingUnitConfig(ingest_width=0)
        with pytest.raises(ValueError):
            SortingUnitConfig(chunk_size=1)
        with pytest.raises(ValueError):
            SortingUnitConfig(merge_ways=1)
        with pytest.raises(ValueError):
            HierarchicalSorter(units=0)


class TestListCycles:
    def test_empty_list_free(self):
        assert HierarchicalSorter().list_cycles(0) == 0.0

    def test_short_list_is_stream_only(self):
        """Lists within the insertion capacity need no merge passes."""
        s = HierarchicalSorter(SortingUnitConfig(ingest_width=4,
                                                 chunk_size=64))
        assert s.list_cycles(64) == 16.0
        assert s.list_cycles(30) == 8.0

    def test_long_list_pays_merge_passes(self):
        cfg = SortingUnitConfig(ingest_width=4, chunk_size=64, merge_ways=4)
        s = HierarchicalSorter(cfg)
        # 256 keys = 4 chunks = 1 merge pass: stream * 2.
        assert s.list_cycles(256) == 64 * 2
        # 1024 keys = 16 chunks = 2 merge passes: stream * 3.
        assert s.list_cycles(1024) == 256 * 3

    @given(st.integers(1, 5000))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_length(self, n):
        s = HierarchicalSorter()
        assert s.list_cycles(n + 1) >= s.list_cycles(n)


class TestPool:
    def test_work_shares_across_units(self):
        lists = [40] * 16
        one = HierarchicalSorter(units=1).total_cycles(lists)
        four = HierarchicalSorter(units=4).total_cycles(lists)
        assert np.isclose(four, one / 4)

    def test_critical_path_floor(self):
        """A single huge list cannot be split across units."""
        s = HierarchicalSorter(units=8)
        assert s.total_cycles([4096]) == s.list_cycles(4096)

    def test_empty(self):
        assert HierarchicalSorter().total_cycles([]) == 0.0
        assert HierarchicalSorter().total_cycles([0, 0]) == 0.0

    def test_short_lists_dominate_pixel_pipeline(self):
        """Typical sparse-tracking lists (tens of keys) stay in the
        insertion front-end: cycles equal ceil(n/width) summed / units."""
        rng = np.random.default_rng(0)
        lists = rng.integers(1, 64, 100)
        s = HierarchicalSorter(units=4)
        expected = sum(-(-int(n) // 4) for n in lists) / 4
        assert np.isclose(s.total_cycles(lists), max(
            expected, max(-(-int(n) // 4) for n in lists)))
