"""Benchmark runner + cycle attribution: payload schema and consistency."""

import json

import pytest

from repro.obs import attrib as obs_attrib
from repro.obs import bench as obs_bench
from repro.obs.bench import (
    SCENARIOS,
    SCHEMA_VERSION,
    SIZES,
    SuiteConfig,
    environment_fingerprint,
    median_mad,
    run_suite,
    write_trajectory,
)
from repro.obs.regress import compare_runs
from repro.obs.tracing import Tracer


class TestMedianMad:
    def test_odd(self):
        med, mad = median_mad([3.0, 1.0, 2.0])
        assert med == 2.0
        assert mad == 1.0

    def test_even(self):
        med, mad = median_mad([1.0, 2.0, 3.0, 4.0])
        assert med == 2.5
        assert mad == 1.0

    def test_constant_samples_have_zero_mad(self):
        med, mad = median_mad([0.5] * 5)
        assert med == 0.5
        assert mad == 0.0

    def test_outlier_robustness(self):
        # One warm-up outlier must not move the median.
        med, _ = median_mad([10.0, 0.1, 0.1, 0.1, 0.1])
        assert med == 0.1

    def test_empty(self):
        assert median_mad([]) == (0.0, 0.0)


class TestSuiteConfig:
    def test_defaults(self):
        cfg = SuiteConfig()
        assert cfg.size == "small"
        assert cfg.repetitions == 3
        assert cfg.spec == SIZES["small"]

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown size"):
            SuiteConfig(size="galactic")

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            SuiteConfig(repetitions=0)


class TestEnvironmentFingerprint:
    def test_required_fields(self):
        env = environment_fingerprint()
        for key in ("python", "numpy", "platform", "machine", "cpu_count"):
            assert key in env
        assert env["cpu_count"] >= 1


class TestRegistry:
    def test_curated_scenarios_present(self):
        assert set(SCENARIOS) >= {"tracking", "mapping", "slam_e2e",
                                  "hw_units"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_suite(SuiteConfig(size="tiny"), scenarios=["nope"])


@pytest.fixture(scope="module")
def tiny_payload():
    """One real tiny-suite run shared by the payload tests."""
    return run_suite(SuiteConfig(size="tiny", repetitions=3))


class TestSuiteRun:
    def test_payload_envelope(self, tiny_payload):
        assert tiny_payload["schema_version"] == SCHEMA_VERSION
        assert tiny_payload["suite"] == "tiny"
        assert tiny_payload["repetitions"] == 3
        assert isinstance(tiny_payload["environment"], dict)
        assert set(tiny_payload["scenarios"]) == set(SCENARIOS)

    def test_scenario_sections(self, tiny_payload):
        for name, scn in tiny_payload["scenarios"].items():
            assert scn["counters"], name
            assert all(isinstance(v, int) for v in scn["counters"].values())
            wall = scn["wall"]
            assert wall["repetitions"] == 3
            assert len(wall["samples_s"]) == 3
            assert wall["median_s"] >= 0.0
            assert wall["mad_s"] >= 0.0

    def test_counters_are_stable_across_repetitions(self, tiny_payload):
        for name, scn in tiny_payload["scenarios"].items():
            assert scn["stable_counters"], name

    def test_slam_e2e_exports_nonzero_image_dims(self, tiny_payload):
        counters = tiny_payload["scenarios"]["slam_e2e"]["counters"]
        spec = SIZES["tiny"]
        for stage in ("tracking_fwd", "tracking_bwd",
                      "mapping_fwd", "mapping_bwd"):
            assert counters[f"{stage}.image_width"] == spec.width
            assert counters[f"{stage}.image_height"] == spec.height

    def test_trace_stages_recorded(self, tiny_payload):
        spans = {row["span"]
                 for scn in tiny_payload["scenarios"].values()
                 for row in scn["trace_stages"]}
        assert "slam.run" in spans

    def test_self_comparison_is_clean(self, tiny_payload):
        roundtrip = json.loads(json.dumps(tiny_payload))
        report = compare_runs(roundtrip, tiny_payload)
        assert report.passed, report.format_markdown()

    def test_write_trajectory_is_canonical(self, tiny_payload, tmp_path):
        out = tmp_path / "traj.json"
        write_trajectory(tiny_payload, str(out))
        text = out.read_text()
        doc = json.loads(text)
        assert text == json.dumps(doc, indent=1, sort_keys=True) + "\n"

    def test_scenario_subset(self):
        payload = run_suite(SuiteConfig(size="tiny", repetitions=1),
                            scenarios=["hw_units"])
        assert list(payload["scenarios"]) == ["hw_units"]


@pytest.fixture(scope="module")
def tiny_workloads():
    from repro.bench.scenarios import (
        build_bundle,
        mapping_workloads,
        tracking_workloads,
    )

    spec = SIZES["tiny"]
    bundle = build_bundle("room0", width=spec.width, height=spec.height,
                          n_frames=spec.frames, seed=0)
    return {
        "tracking": tracking_workloads(bundle, tile=spec.tracking_tile),
        "mapping": mapping_workloads(bundle, tile=spec.mapping_tile),
    }


class TestAttribution:
    @pytest.mark.parametrize("scenario", ["tracking", "mapping"])
    def test_bottleneck_matches_cycle_breakdown(self, tiny_workloads,
                                                scenario):
        from repro.hw import SplatonicAccelerator

        accel = SplatonicAccelerator()
        workload = tiny_workloads[scenario]["pixel"]
        report = obs_attrib.attribute_workload(workload, accel=accel,
                                               scenario=scenario)
        model = accel.stage_model(workload)
        assert report.bottleneck("forward") == model.forward.bottleneck
        assert report.bottleneck("backward") == model.backward.bottleneck
        flagged = {r.pass_name: r.stage for r in report.rows if r.bottleneck}
        assert flagged["forward"] == model.forward.bottleneck
        assert flagged["backward"] == model.backward.bottleneck

    @pytest.mark.parametrize("scenario", ["tracking", "mapping"])
    def test_rows_cover_all_units_with_cycles(self, tiny_workloads, scenario):
        report = obs_attrib.attribute_workload(
            tiny_workloads[scenario]["pixel"], scenario=scenario)
        assert {r.stage for r in report.rows} == set(obs_attrib.STAGE_UNITS)
        assert all(r.unit != "(unmapped unit)" for r in report.rows)
        for pass_name in ("forward", "backward"):
            shares = [r.share for r in report.rows_for(pass_name)]
            assert sum(shares) == pytest.approx(1.0)

    def test_totals_carry_dram_roofline(self, tiny_workloads):
        report = obs_attrib.attribute_workload(
            tiny_workloads["tracking"]["pixel"])
        for key in ("forward_cycles", "backward_cycles",
                    "forward_dram_cycles", "backward_dram_cycles"):
            assert report.totals[key] > 0.0

    def test_table_marks_bottleneck(self, tiny_workloads):
        report = obs_attrib.attribute_workload(
            tiny_workloads["mapping"]["pixel"], scenario="mapping")
        table = report.format_table()
        assert "<-- bottleneck" in table
        assert "aggregation unit" in table

    def test_chrome_trace_has_one_thread_per_unit(self, tiny_workloads,
                                                  tmp_path):
        report = obs_attrib.attribute_workload(
            tiny_workloads["tracking"]["pixel"])
        out = tmp_path / "units.json"
        n = report.write_chrome_trace(str(out))
        events = json.loads(out.read_text())
        assert len(events) == n
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == set(obs_attrib.STAGE_UNITS.values())
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")

    def test_report_json_round_trips(self, tiny_workloads, tmp_path):
        report = obs_attrib.attribute_workload(
            tiny_workloads["tracking"]["pixel"], scenario="tracking")
        out = tmp_path / "attrib.json"
        report.write_json(str(out))
        doc = json.loads(out.read_text())
        assert doc["scenario"] == "tracking"
        assert doc["bottlenecks"]["backward"] == report.bottleneck("backward")

    def test_rejects_tile_workload(self, tiny_workloads):
        with pytest.raises(ValueError, match="pixel"):
            obs_attrib.attribute_workload(
                tiny_workloads["tracking"]["tile_sparse"])


class TestWallStageRows:
    def test_spans_fold_onto_paper_stages(self):
        tracer = Tracer()
        with tracer.capture():
            with tracer.span("render.project"):
                pass
            with tracer.span("render.composite"):
                pass
            with tracer.span("something.else"):
                pass
        rows = obs_attrib.wall_stage_rows(tracer)
        stages = {r["stage"] for r in rows}
        assert {"projection", "rasterization", "(other)"} <= stages
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_empty_tracer_is_empty(self):
        assert obs_attrib.wall_stage_rows(Tracer()) == []
