"""Adam optimizer: convergence, state handling, resizing."""

import numpy as np
import pytest

from repro.slam import Adam
from repro.slam.optim import packed_cloud_blocks


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 0.5])
        x = np.zeros(3)
        opt = Adam(3, lr=0.1)
        for _ in range(300):
            grad = 2 * (x - target)
            x = x + opt.step(grad)
        assert np.allclose(x, target, atol=1e-3)

    def test_step_direction_opposes_gradient(self):
        opt = Adam(4, lr=0.01)
        grad = np.array([1.0, -1.0, 2.0, 0.0])
        step = opt.step(grad)
        assert np.all(step[grad > 0] < 0)
        assert np.all(step[grad < 0] > 0)
        assert step[3] == 0.0

    def test_first_step_magnitude_is_lr(self):
        """Adam's bias correction makes the first step exactly lr-sized."""
        opt = Adam(1, lr=0.05)
        step = opt.step(np.array([123.0]))
        assert np.isclose(abs(step[0]), 0.05, rtol=1e-4)

    def test_per_parameter_lr(self):
        opt = Adam(2, lr=np.array([0.1, 0.001]))
        step = opt.step(np.ones(2))
        assert abs(step[0]) > abs(step[1]) * 50

    def test_shape_mismatch_raises(self):
        opt = Adam(3, lr=0.1)
        with pytest.raises(ValueError):
            opt.step(np.zeros(4))

    def test_resize_grows_state(self):
        opt = Adam(2, lr=0.1)
        opt.step(np.ones(2))
        opt.resize(5)
        step = opt.step(np.ones(5))
        assert step.shape == (5,)

    def test_resize_keeps_old_momentum(self):
        opt = Adam(1, lr=0.1)
        opt.step(np.array([1.0]))
        m_before = opt.m[0]
        opt.resize(3)
        assert opt.m[0] == m_before
        assert np.allclose(opt.m[1:], 0)

    def test_resize_shrink_raises(self):
        opt = Adam(3, lr=0.1)
        with pytest.raises(ValueError):
            opt.resize(2)


class TestBlockAwareResize:
    """Packed `[means, scales, opacities, colors]` vectors are
    block-ordered; growing the Gaussian count must insert fresh state
    inside each block.  A plain tail-append lands new-Gaussian momentum
    (and learning rates) in the colors block — the latent layout bug the
    `blocks` argument fixes."""

    def test_packed_cloud_blocks_layout(self):
        blocks = packed_cloud_blocks(2, 3)
        assert blocks == [(6, 9), (2, 3), (2, 3), (6, 9)]
        assert packed_cloud_blocks(0, 2) == [(0, 6), (0, 2), (0, 2), (0, 6)]
        with pytest.raises(ValueError):
            packed_cloud_blocks(3, 2)

    def test_block_resize_keeps_momentum_in_its_block(self):
        n, new_n = 2, 3
        # Distinct per-block momentum so misplacement is detectable.
        opt = Adam(8 * n, lr=0.1)
        grad = np.concatenate([
            np.full(3 * n, 1.0),    # means
            np.full(n, 2.0),        # log-scales
            np.full(n, 3.0),        # logit-opacities
            np.full(3 * n, 4.0),    # colors
        ])
        opt.step(grad)
        opt.resize(8 * new_n, blocks=packed_cloud_blocks(n, new_n))
        m = opt.m
        # Each block: old momentum first, zeros for the new Gaussian.
        means, rest = m[:3 * new_n], m[3 * new_n:]
        scales, rest = rest[:new_n], rest[new_n:]
        opac, colors = rest[:new_n], rest[new_n:]
        assert np.all(means[:3 * n] != 0) and np.all(means[3 * n:] == 0)
        assert scales[0] != 0 and scales[1] != 0 and scales[2] == 0
        assert opac[0] != 0 and opac[1] != 0 and opac[2] == 0
        assert np.all(colors[:3 * n] != 0) and np.all(colors[3 * n:] == 0)
        # The colors momentum kept its value (no scale/opacity state bled
        # into it, as a tail append would cause): first-step m = 0.1*grad.
        assert np.allclose(colors[:3 * n], 0.1 * 4.0)

    def test_block_resize_extends_learning_rates_per_block(self):
        n, new_n = 2, 4
        lr = np.concatenate([
            np.full(3 * n, 0.001),   # means
            np.full(n, 0.01),        # log-scales
            np.full(n, 0.05),        # logit-opacities
            np.full(3 * n, 0.0025),  # colors
        ])
        opt = Adam(8 * n, lr)
        opt.resize(8 * new_n, blocks=packed_cloud_blocks(n, new_n))
        expected = np.concatenate([
            np.full(3 * new_n, 0.001),
            np.full(new_n, 0.01),
            np.full(new_n, 0.05),
            np.full(3 * new_n, 0.0025),
        ])
        assert np.array_equal(opt.lr, expected)

    def test_tail_append_would_corrupt_blocks(self):
        """Demonstrate the bug the block-aware path prevents: a flat
        resize of a packed vector puts the new lr in the colors block."""
        n, new_n = 2, 3
        lr = np.concatenate([
            np.full(3 * n, 0.001), np.full(n, 0.01),
            np.full(n, 0.05), np.full(3 * n, 0.0025)])
        flat = Adam(8 * n, lr)
        flat.resize(8 * new_n)  # no blocks: tail append
        # Tail append: every appended lr clones the colors lr, and the
        # scales/opacities segments of the grown vector are misaligned.
        assert np.all(flat.lr[8 * n:] == 0.0025)
        blocked = Adam(8 * n, lr)
        blocked.resize(8 * new_n, blocks=packed_cloud_blocks(n, new_n))
        assert not np.array_equal(flat.lr, blocked.lr)
        # The blocked layout matches a freshly built packed lr vector.
        fresh = np.concatenate([
            np.full(3 * new_n, 0.001), np.full(new_n, 0.01),
            np.full(new_n, 0.05), np.full(3 * new_n, 0.0025)])
        assert np.array_equal(blocked.lr, fresh)

    def test_block_resize_validates_sizes(self):
        opt = Adam(16, lr=0.1)
        with pytest.raises(ValueError, match="old entries"):
            opt.resize(24, blocks=[(8, 12), (4, 8)])
        with pytest.raises(ValueError, match="new entries"):
            opt.resize(24, blocks=packed_cloud_blocks(2, 4))
        with pytest.raises(ValueError, match="block can only grow"):
            opt.resize(20, blocks=[(8, 4), (8, 16)])

    def test_zero_to_n_blocks(self):
        """Growing from an empty cloud: every block starts empty, so the
        fresh learning rate falls back to 0 (no trailing lr to clone)."""
        opt = Adam(0, lr=0.1)
        opt.resize(8, blocks=packed_cloud_blocks(0, 1))
        assert opt.m.shape == (8,)
        assert np.all(opt.lr == 0.0)
