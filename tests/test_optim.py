"""Adam optimizer: convergence, state handling, resizing."""

import numpy as np
import pytest

from repro.slam import Adam


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 0.5])
        x = np.zeros(3)
        opt = Adam(3, lr=0.1)
        for _ in range(300):
            grad = 2 * (x - target)
            x = x + opt.step(grad)
        assert np.allclose(x, target, atol=1e-3)

    def test_step_direction_opposes_gradient(self):
        opt = Adam(4, lr=0.01)
        grad = np.array([1.0, -1.0, 2.0, 0.0])
        step = opt.step(grad)
        assert np.all(step[grad > 0] < 0)
        assert np.all(step[grad < 0] > 0)
        assert step[3] == 0.0

    def test_first_step_magnitude_is_lr(self):
        """Adam's bias correction makes the first step exactly lr-sized."""
        opt = Adam(1, lr=0.05)
        step = opt.step(np.array([123.0]))
        assert np.isclose(abs(step[0]), 0.05, rtol=1e-4)

    def test_per_parameter_lr(self):
        opt = Adam(2, lr=np.array([0.1, 0.001]))
        step = opt.step(np.ones(2))
        assert abs(step[0]) > abs(step[1]) * 50

    def test_shape_mismatch_raises(self):
        opt = Adam(3, lr=0.1)
        with pytest.raises(ValueError):
            opt.step(np.zeros(4))

    def test_resize_grows_state(self):
        opt = Adam(2, lr=0.1)
        opt.step(np.ones(2))
        opt.resize(5)
        step = opt.step(np.ones(5))
        assert step.shape == (5,)

    def test_resize_keeps_old_momentum(self):
        opt = Adam(1, lr=0.1)
        opt.step(np.array([1.0]))
        m_before = opt.m[0]
        opt.resize(3)
        assert opt.m[0] == m_before
        assert np.allclose(opt.m[1:], 0)

    def test_resize_shrink_raises(self):
        opt = Adam(3, lr=0.1)
        with pytest.raises(ValueError):
            opt.resize(2)
