"""Temporal-coherence render cache: exact-revalidation equivalence.

The cache memoizes a margin-dilated candidate superset across iterations
and revalidates it exactly; regardless of margin, hit, miss, or mid-loop
rebuild, the cached pipeline must be bit-identical to the uncached one —
outputs, gradients, stats counters, and record streams — on every kernel
backend.  Also covers candidate-generator edge cases the superset path
has to survive (off-screen Gaussians, border-clamped bboxes, empty
active sets) and the config/env resolution chain.
"""

import numpy as np
import pytest

from repro.core import SplatonicConfig, sample_tracking_pixels
from repro.core.pixel_pipeline import backward_sparse, render_sparse
from repro.datasets import make_replica_sequence
from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.gaussians.se3 import se3_exp
from repro.render.cache import (
    ENV_VAR,
    INITIAL_MARGIN,
    RenderCache,
    resolve_render_cache,
)
from repro.render.stats import PipelineStats
from repro.slam import SLAMSystem

BG = np.array([0.15, 0.25, 0.05])
W, H = 48, 36
BACKENDS = ("reference", "vectorized", "parallel")
GRAD_FIELDS = ("d_means", "d_log_scales", "d_logit_opacities", "d_colors",
               "d_pose_twist")


def make_scene(n=120, seed=0, z_lo=1.0, z_hi=5.0):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-2, 2, n), rng.uniform(-1.5, 1.5, n),
                        rng.uniform(z_lo, z_hi, n)], axis=-1),
        scales=rng.uniform(0.03, 0.3, n),
        opacities=rng.uniform(0.1, 0.95, n),
        colors=rng.uniform(0, 1, (n, 3)),
    )
    return cloud, Camera(Intrinsics.from_fov(W, H, 75.0))


def random_pixels(seed=0, k=40):
    rng = np.random.default_rng(seed)
    return np.stack([rng.integers(0, W, k), rng.integers(0, H, k)], axis=-1)


def assert_results_identical(a, b):
    assert np.array_equal(a.color, b.color)
    assert np.array_equal(a.depth, b.depth)
    assert np.array_equal(a.silhouette, b.silhouette)
    assert len(a.pixel_lists) == len(b.pixel_lists)
    for x, y in zip(a.pixel_lists, b.pixel_lists):
        assert np.array_equal(x, y)
    # Logical counters (as_dict) must match exactly; the cache-only
    # counters are deliberately outside as_dict.
    assert a.stats.as_dict() == b.stats.as_dict()
    assert a.stats.pixel_list_lengths == b.stats.pixel_list_lengths
    assert a.stats.per_pixel_contribs == b.stats.per_pixel_contribs


def assert_grads_identical(ga, gb):
    for name in GRAD_FIELDS:
        assert np.array_equal(getattr(ga, name), getattr(gb, name)), name
    assert ga.stats.as_dict() == gb.stats.as_dict()


def drift_loop(cloud, cam, pixels, *, backend, cache, iters,
               twist=None, param_step=None, lattice_tile=None,
               record_per_pixel=True):
    """Run ``iters`` forward+backward passes with drifting inputs."""
    outs = []
    pose = cam.pose_c2w
    cur = cloud
    for _ in range(iters):
        camera = Camera(cam.intrinsics, pose)
        res = render_sparse(cur, camera, pixels, BG, backend=backend,
                            lattice_tile=lattice_tile,
                            record_per_pixel=record_per_pixel, cache=cache)
        grads = backward_sparse(res, cur, camera, np.ones_like(res.color),
                                np.ones_like(res.depth),
                                np.ones_like(res.silhouette))
        outs.append((res, grads))
        if twist is not None:
            pose = pose @ se3_exp(twist)
        if param_step is not None:
            cur = cur.unpack(cur.pack() + param_step)
    return outs


class TestResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert resolve_render_cache(False) is False
        monkeypatch.delenv(ENV_VAR)
        assert resolve_render_cache(True) is True

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False), ("nope", False),
    ])
    def test_env_truthiness(self, monkeypatch, value, expected):
        monkeypatch.setenv(ENV_VAR, value)
        assert resolve_render_cache(None) is expected

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_render_cache(None) is False

    def test_config_plumbing(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        from repro.core.splatonic import Splatonic
        assert Splatonic(SplatonicConfig()).render_cache_enabled() is False
        sp = Splatonic(SplatonicConfig(render_cache=True))
        assert sp.render_cache_enabled() is True
        assert isinstance(sp.make_render_cache("tracking"), RenderCache)
        assert Splatonic(SplatonicConfig()).make_render_cache("mapping") is None

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            RenderCache(mode="bogus")


class TestEquivalence:
    """Cached output is bit-identical to uncached, hit or miss."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mapping_drift(self, backend):
        cloud, cam = make_scene()
        pixels = random_pixels()
        step = np.random.default_rng(3).normal(0.0, 1e-3, cloud.pack().size)
        plain = drift_loop(cloud, cam, pixels, backend=backend, cache=None,
                           iters=6, param_step=step)
        cache = RenderCache("mapping")
        cached = drift_loop(cloud, cam, pixels, backend=backend, cache=cache,
                            iters=6, param_step=step)
        for (r0, g0), (r1, g1) in zip(plain, cached):
            assert_results_identical(r0, r1)
            assert_grads_identical(g0, g1)
        assert cache.hits >= 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tracking_drift_lattice(self, backend):
        cloud, cam = make_scene()
        pixels = sample_tracking_pixels(W, H, 8, "random",
                                        np.random.default_rng(1))
        twist = np.array([2e-3, -1e-3, 1.5e-3, 1e-3, -5e-4, 8e-4])
        plain = drift_loop(cloud, cam, pixels, backend=backend, cache=None,
                           iters=6, twist=twist, lattice_tile=8)
        cache = RenderCache("tracking")
        cached = drift_loop(cloud, cam, pixels, backend=backend, cache=cache,
                            iters=6, twist=twist, lattice_tile=8)
        for (r0, g0), (r1, g1) in zip(plain, cached):
            assert_results_identical(r0, r1)
            assert_grads_identical(g0, g1)
        assert cache.hits >= 4

    @pytest.mark.parametrize("margin", [0.0, 0.25, 2.0, 50.0])
    def test_any_margin_is_exact(self, margin):
        """Correctness never depends on the margin — only the hit rate."""
        cloud, cam = make_scene(seed=5)
        pixels = random_pixels(seed=5)
        step = np.random.default_rng(7).normal(0.0, 2e-3, cloud.pack().size)
        plain = drift_loop(cloud, cam, pixels, backend="vectorized",
                           cache=None, iters=5, param_step=step)
        cache = RenderCache("mapping", margin=margin,
                            min_margin=margin, max_margin=max(margin, 1.0))
        cached = drift_loop(cloud, cam, pixels, backend="vectorized",
                            cache=cache, iters=5, param_step=step)
        for (r0, g0), (r1, g1) in zip(plain, cached):
            assert_results_identical(r0, r1)
            assert_grads_identical(g0, g1)

    def test_forced_midloop_rebuild_stays_identical(self):
        """A violation mid-loop rebuilds transparently: same bits after."""
        cloud, cam = make_scene(seed=2)
        pixels = random_pixels(seed=2)
        # Tiny margin + a large teleport step at iteration 3 forces a
        # warm rebuild; outputs must stay bit-identical throughout.
        cache = RenderCache("mapping", margin=0.05, min_margin=0.05,
                            max_margin=0.05)
        cur_plain = cur_cached = cloud
        rng = np.random.default_rng(11)
        for i in range(6):
            res0 = render_sparse(cur_plain, cam, pixels, BG,
                                 backend="vectorized")
            res1 = render_sparse(cur_cached, cam, pixels, BG,
                                 backend="vectorized", cache=cache)
            assert_results_identical(res0, res1)
            scale = 0.5 if i == 2 else 1e-4
            step = rng.normal(0.0, scale, cloud.pack().size)
            cur_plain = cur_plain.unpack(cur_plain.pack() + step)
            cur_cached = cur_cached.unpack(cur_cached.pack() + step)
        assert cache.rebuilds >= 1
        assert cache.hits + cache.misses == 6

    def test_pixel_set_change_invalidates(self):
        cloud, cam = make_scene()
        cache = RenderCache("mapping")
        render_sparse(cloud, cam, random_pixels(seed=0), BG,
                      backend="vectorized", cache=cache)
        render_sparse(cloud, cam, random_pixels(seed=9), BG,
                      backend="vectorized", cache=cache)
        assert cache.misses == 2
        assert cache.rebuilds == 1


class TestEdgeCases:
    """Candidate-generation corners the superset path must reproduce."""

    def test_all_gaussians_behind_camera(self):
        cloud, cam = make_scene(z_lo=-5.0, z_hi=-1.0)
        pixels = random_pixels()
        cache = RenderCache("mapping")
        for _ in range(2):
            res0 = render_sparse(cloud, cam, pixels, BG, backend="vectorized")
            res1 = render_sparse(cloud, cam, pixels, BG, backend="vectorized",
                                 cache=cache)
            assert_results_identical(res0, res1)
            assert res1.stats.num_projected == 0
        assert cache.hits == 1

    def test_far_offscreen_cloud(self):
        """In depth range but projecting far outside the image."""
        rng = np.random.default_rng(4)
        n = 60
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(40, 50, n), rng.uniform(40, 50, n),
                            rng.uniform(1.0, 3.0, n)], axis=-1),
            scales=rng.uniform(0.03, 0.1, n),
            opacities=rng.uniform(0.3, 0.9, n),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        pixels = random_pixels()
        cache = RenderCache("mapping")
        for _ in range(2):
            res0 = render_sparse(cloud, cam, pixels, BG, backend="vectorized")
            res1 = render_sparse(cloud, cam, pixels, BG, backend="vectorized",
                                 cache=cache)
            assert_results_identical(res0, res1)
            assert res1.stats.num_candidate_pairs == 0

    def test_border_clamped_bboxes(self):
        """Gaussians straddling the image border; pixels along the edge."""
        rng = np.random.default_rng(8)
        n = 50
        # Means aimed at the image-plane border in camera space.
        xs = np.concatenate([rng.uniform(-2.6, -2.2, n // 2),
                             rng.uniform(2.2, 2.6, n - n // 2)])
        cloud = GaussianCloud.create(
            means=np.stack([xs, rng.uniform(-1.9, 1.9, n),
                            np.full(n, 2.0)], axis=-1),
            scales=rng.uniform(0.1, 0.4, n),
            opacities=rng.uniform(0.3, 0.9, n),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        border = np.array([[0, 0], [W - 1, 0], [0, H - 1], [W - 1, H - 1],
                           [0, H // 2], [W - 1, H // 2], [W // 2, 0],
                           [W // 2, H - 1]])
        step = np.random.default_rng(9).normal(0.0, 1e-3, cloud.pack().size)
        plain = drift_loop(cloud, cam, border, backend="vectorized",
                           cache=None, iters=4, param_step=step)
        cached = drift_loop(cloud, cam, border, backend="vectorized",
                            cache=RenderCache("mapping"), iters=4,
                            param_step=step)
        for (r0, g0), (r1, g1) in zip(plain, cached):
            assert_results_identical(r0, r1)
            assert_grads_identical(g0, g1)

    def test_empty_pixel_superset(self):
        """Visible cloud but pixels that no bbox covers -> empty pairs."""
        rng = np.random.default_rng(12)
        n = 30
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(-0.1, 0.1, n),
                            rng.uniform(-0.1, 0.1, n),
                            rng.uniform(2.0, 3.0, n)], axis=-1),
            scales=np.full(n, 0.01),
            opacities=rng.uniform(0.3, 0.9, n),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        corners = np.array([[0, 0], [W - 1, H - 1]])
        cache = RenderCache("mapping")
        for _ in range(2):
            res0 = render_sparse(cloud, cam, corners, BG, backend="vectorized")
            res1 = render_sparse(cloud, cam, corners, BG, backend="vectorized",
                                 cache=cache)
            assert_results_identical(res0, res1)


class TestStatsAndCounters:
    def test_cache_counters_populated(self):
        cloud, cam = make_scene()
        pixels = random_pixels()
        cache = RenderCache("mapping")
        r1 = render_sparse(cloud, cam, pixels, BG, backend="vectorized",
                           cache=cache)
        r2 = render_sparse(cloud, cam, pixels, BG, backend="vectorized",
                           cache=cache)
        assert (r1.stats.cache_hits, r1.stats.cache_misses) == (0, 1)
        assert (r2.stats.cache_hits, r2.stats.cache_misses) == (1, 0)
        assert r2.stats.cache_active_gaussians > 0

    def test_cache_counters_outside_logical_dict(self):
        """as_dict/headline must not see cache counters — they are the
        bit-identity comparison surface of the flight differ and bench."""
        stats = PipelineStats()
        stats.cache_hits = 7
        stats.cache_misses = 3
        stats.cache_rebuilds = 1
        stats.cache_active_gaussians = 99
        assert not any("cache" in k for k in stats.as_dict())
        assert "cache" not in stats.headline()

    def test_merge_and_summary(self):
        a = PipelineStats()
        a.cache_hits, a.cache_misses, a.cache_rebuilds = 3, 1, 1
        a.cache_active_gaussians = 10
        b = PipelineStats()
        b.cache_hits, b.cache_misses = 1, 1
        a.merge(b)
        summary = a.cache_summary()
        assert summary["hits"] == 4
        assert summary["misses"] == 2
        assert summary["rebuilds"] == 1
        assert summary["hit_rate"] == pytest.approx(4 / 6)

    def test_initial_margin_priors(self):
        assert RenderCache("tracking").margin == INITIAL_MARGIN["tracking"]
        assert RenderCache("mapping").margin == INITIAL_MARGIN["mapping"]

    def test_adaptive_margin_clamps(self):
        cache = RenderCache("mapping", min_margin=0.5, max_margin=4.0)
        cloud, cam = make_scene()
        pixels = random_pixels()
        render_sparse(cloud, cam, pixels, BG, backend="vectorized",
                      cache=cache)
        # A huge teleport forces a warm rebuild with a clamped margin.
        moved = cloud.unpack(cloud.pack()
                             + np.random.default_rng(0).normal(
                                 0.0, 1.0, cloud.pack().size))
        render_sparse(moved, cam, pixels, BG, backend="vectorized",
                      cache=cache)
        assert cache.rebuilds == 1
        assert 0.5 <= cache.margin <= 4.0


class TestSLAMTrajectory:
    """End-to-end: cache on/off produce the same trajectory and map."""

    @pytest.fixture(scope="class")
    def sequence(self):
        return make_replica_sequence("room0", n_frames=6, width=56, height=40,
                                     surface_density=10)

    def test_trajectory_equivalence(self, sequence, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        cfg = SplatonicConfig(tracking_tile=8)
        base = SLAMSystem("splatam", mode="sparse", splatonic_config=cfg,
                          render_cache=False).run(sequence)
        cached = SLAMSystem("splatam", mode="sparse", splatonic_config=cfg,
                            render_cache=True).run(sequence)
        assert np.array_equal(base.est_trajectory, cached.est_trajectory)
        assert np.array_equal(base.cloud.pack(), cached.cloud.pack())
        fwd = PipelineStats()
        fwd.merge(cached.stage_stats["tracking_fwd"])
        fwd.merge(cached.stage_stats["mapping_fwd"])
        assert fwd.cache_hits > 0
        base_fwd = PipelineStats()
        base_fwd.merge(base.stage_stats["tracking_fwd"])
        base_fwd.merge(base.stage_stats["mapping_fwd"])
        assert base_fwd.cache_hits == 0 and base_fwd.cache_misses == 0
