"""End-to-end SLAM runs: trajectories, maps, stats, and accuracy floors."""

import numpy as np
import pytest

from repro.core import SplatonicConfig
from repro.datasets import make_replica_sequence
from repro.slam import SLAMSystem


@pytest.fixture(scope="module")
def sequence():
    return make_replica_sequence("room0", n_frames=8, width=56, height=40,
                                 surface_density=10)


@pytest.fixture(scope="module")
def sparse_result(sequence):
    return SLAMSystem(
        "splatam", mode="sparse",
        splatonic_config=SplatonicConfig(tracking_tile=8)).run(sequence)


class TestRun:
    def test_trajectory_shapes(self, sequence, sparse_result):
        n = len(sequence)
        assert sparse_result.est_trajectory.shape == (n, 4, 4)
        assert sparse_result.gt_trajectory.shape == (n, 4, 4)
        assert sparse_result.num_frames == n

    def test_first_pose_anchored(self, sequence, sparse_result):
        assert np.allclose(sparse_result.est_trajectory[0],
                           sequence[0].gt_pose_c2w)

    def test_map_grows_from_bootstrap(self, sparse_result):
        assert len(sparse_result.cloud) > 100

    def test_ate_reasonable(self, sparse_result):
        ate = sparse_result.ate()
        assert np.isfinite(ate.rmse)
        assert ate.rmse < 0.5, "proxy-scale ATE should stay sub-half-metre"

    def test_quality_metrics(self, sequence, sparse_result):
        q = sparse_result.eval_quality(sequence)
        assert q["psnr"] > 20.0
        assert 0.0 <= q["ssim"] <= 1.0
        assert q["depth_l1"] < 1.0

    def test_stage_stats_populated(self, sparse_result):
        stats = sparse_result.stage_stats
        assert set(stats) == {"tracking_fwd", "tracking_bwd",
                              "mapping_fwd", "mapping_bwd"}
        assert stats["tracking_fwd"].num_pixels > 0
        assert stats["tracking_bwd"].num_atomic_adds > 0
        assert stats["mapping_fwd"].num_pixels > 0

    def test_tracking_iterations_recorded(self, sequence, sparse_result):
        assert len(sparse_result.tracking_iterations) == len(sequence) - 1
        assert all(i >= 1 for i in sparse_result.tracking_iterations)

    def test_mapping_invocations(self, sparse_result):
        # Bootstrap + one per map_every frames.
        assert sparse_result.mapping_invocations >= 2


class TestModes:
    def test_dense_mode_runs(self, sequence):
        result = SLAMSystem("splatam", mode="dense").run(sequence, n_frames=4)
        assert result.mode == "dense"
        assert np.isfinite(result.ate().rmse)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SLAMSystem("splatam", mode="semi")

    def test_needs_two_frames(self, sequence):
        with pytest.raises(ValueError):
            SLAMSystem("splatam").run(sequence, n_frames=1)

    def test_seed_reproducibility(self, sequence):
        a = SLAMSystem("splatam", seed=3).run(sequence, n_frames=4)
        b = SLAMSystem("splatam", seed=3).run(sequence, n_frames=4)
        assert np.allclose(a.est_trajectory, b.est_trajectory)

    @pytest.mark.parametrize("algorithm", ["monogs", "gsslam", "flashslam"])
    def test_other_algorithms_run(self, sequence, algorithm):
        result = SLAMSystem(algorithm, mode="sparse").run(sequence,
                                                          n_frames=4)
        assert result.algorithm == algorithm
        assert np.isfinite(result.ate().rmse)


class TestConstantVelocity:
    def test_extrapolation(self):
        from repro.gaussians import se3_exp
        step = se3_exp(np.array([0.1, 0, 0, 0, 0.05, 0]))
        p0 = np.eye(4)
        p1 = p0 @ step
        init = SLAMSystem._constant_velocity_init([p0, p1])
        assert np.allclose(init, p1 @ step)

    def test_single_pose_fallback(self):
        p0 = np.eye(4)
        init = SLAMSystem._constant_velocity_init([p0])
        assert np.allclose(init, p0)


class TestEvalQualityEdges:
    def test_every_larger_than_run_evaluates_first_frame_only(
            self, sequence, sparse_result):
        q = sparse_result.eval_quality(sequence,
                                       every=sparse_result.num_frames + 10)
        assert q["frames_evaluated"] == 1
        assert q["psnr"] > 0.0

    def test_every_zero_clamps_to_all_frames(self, sequence, sparse_result):
        q = sparse_result.eval_quality(sequence, every=0)
        assert q["frames_evaluated"] == sparse_result.num_frames

    def test_negative_every_clamps_too(self, sequence, sparse_result):
        q = sparse_result.eval_quality(sequence, every=-3)
        assert q["frames_evaluated"] == sparse_result.num_frames

    def test_every_one_matches_zero(self, sequence, sparse_result):
        assert (sparse_result.eval_quality(sequence, every=1)
                == sparse_result.eval_quality(sequence, every=0))


class TestFlightRecording:
    def test_run_with_recorder_reproduces_ate(self, sequence, tmp_path):
        from repro.obs.flight import FlightRecorder, read_flight_record
        path = str(tmp_path / "run.jsonl")
        rec = FlightRecorder()
        rec.enable(path)
        result = SLAMSystem(
            "splatam", mode="sparse",
            splatonic_config=SplatonicConfig(tracking_tile=8)).run(
                sequence, n_frames=4, flight=rec)
        rec.disable()
        log = read_flight_record(path)
        assert log.num_frames == 4
        assert log.summary["ate"]["rmse"] == pytest.approx(
            result.ate().rmse, rel=1e-12)

    def test_custom_health_monitor_without_recorder(self, sequence):
        from repro.obs.health import HealthMonitor
        mon = HealthMonitor()
        SLAMSystem(
            "splatam", mode="sparse",
            splatonic_config=SplatonicConfig(tracking_tile=8)).run(
                sequence, n_frames=4, health=mon)
        # The stream was watched (state advanced) even with no recorder.
        assert mon._last_position is not None
        assert mon.alerts == []
