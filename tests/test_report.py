"""Paper-claim registry and comparison grading."""

import pytest

from repro.bench import PAPER_CLAIMS, compare, format_comparison


class TestClaims:
    def test_registry_covers_every_figure(self):
        figures = {c.figure for c in PAPER_CLAIMS.values()}
        expected = {"fig04", "fig05", "fig07", "fig08", "fig09", "fig10",
                    "fig11", "fig14", "fig17", "fig18", "fig19", "fig20",
                    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
                    "fig27", "area"}
        assert expected.issubset(figures)

    def test_unknown_claim_raises(self):
        with pytest.raises(KeyError):
            compare("fig99", "nothing", 1.0)


class TestGrading:
    def test_ratio_within_order_of_magnitude(self):
        assert compare("fig19", "e2e_speedup", 18.0).shape_holds
        assert compare("fig19", "e2e_speedup", 140.0).shape_holds
        assert not compare("fig19", "e2e_speedup", 0.5).shape_holds

    def test_share_within_band(self):
        assert compare("fig08", "aggregation_share", 0.70).shape_holds
        assert not compare("fig08", "aggregation_share", 0.1).shape_holds

    def test_absolute_direction(self):
        assert compare("area", "total_mm2", 0.97).shape_holds

    def test_format(self):
        rows = [compare("fig19", "e2e_speedup", 18.6),
                compare("fig22", "splatonic_hw_speedup", 277.5)]
        text = format_comparison(rows)
        assert "fig19" in text and "fig22" in text
        assert text.count("|") > 10
