"""Aggregation-unit simulator: conservation, caching, and the naive bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import AggregationConfig, AggregationUnit


def make_stream(n_pixels=40, n_gaussians=200, per_pixel=30, seed=0,
                locality=True):
    """Synthetic per-pixel contributing-ID lists with spatial locality."""
    rng = np.random.default_rng(seed)
    lists = []
    centre = rng.integers(n_gaussians)
    for _ in range(n_pixels):
        if locality:
            centre = (centre + rng.integers(-5, 6)) % n_gaussians
            ids = (centre + rng.integers(-20, 21, per_pixel)) % n_gaussians
        else:
            ids = rng.integers(0, n_gaussians, per_pixel)
        lists.append(np.unique(ids))
    return lists


class TestConfig:
    def test_entry_counts(self):
        cfg = AggregationConfig()
        assert cfg.cache_entries == 1024
        assert cfg.scoreboard_entries == 512


class TestTraceConservation:
    def test_all_tuples_processed(self):
        stream = make_stream()
        trace = AggregationUnit().simulate(stream)
        assert trace.tuples == sum(len(p) for p in stream)

    def test_hits_plus_misses_equal_unique_lookups(self):
        stream = make_stream()
        trace = AggregationUnit().simulate(stream)
        # One lookup per unique Gaussian per batch.
        assert trace.cache_hits + trace.cache_misses >= trace.cache_misses
        assert trace.cache_misses >= 1

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_property_cycles_cover_merge_throughput(self, seed):
        """The unit can never beat its merge throughput."""
        stream = make_stream(seed=seed)
        unit = AggregationUnit()
        trace = unit.simulate(stream)
        min_cycles = trace.tuples / unit.config.merge_tuples_per_cycle
        # Batching means the bound applies per batch; allow equality.
        assert trace.cycles >= min_cycles * 0.99

    def test_empty_stream(self):
        trace = AggregationUnit().simulate([])
        assert trace.cycles == 0.0
        assert trace.tuples == 0


class TestCaching:
    def test_locality_improves_hit_rate(self):
        local = AggregationUnit().simulate(make_stream(locality=True))
        scattered = AggregationUnit().simulate(
            make_stream(locality=False, n_gaussians=100_000))
        assert local.hit_rate > scattered.hit_rate

    def test_small_cache_misses_more(self):
        stream = make_stream(n_gaussians=5000, per_pixel=60)
        big = AggregationUnit(AggregationConfig(
            gaussian_cache_bytes=256 * 1024)).simulate(stream)
        small = AggregationUnit(AggregationConfig(
            gaussian_cache_bytes=1 * 1024)).simulate(stream)
        assert small.cache_misses > big.cache_misses
        assert small.dram_bytes > big.dram_bytes

    def test_repeated_pixel_hits(self):
        """Identical consecutive lists should hit after the first batch."""
        ids = np.arange(50)
        stream = [ids] * 16
        trace = AggregationUnit().simulate(stream)
        assert trace.cache_misses == 50
        assert trace.hit_rate > 0.5


class TestNaiveComparison:
    def test_scoreboard_beats_naive(self):
        stream = make_stream(n_pixels=60)
        unit = AggregationUnit()
        smart = unit.simulate(stream)
        naive = unit.simulate_naive(stream)
        assert naive.cycles > 2 * smart.cycles
        assert naive.dram_bytes > smart.dram_bytes

    def test_naive_counts(self):
        stream = make_stream(n_pixels=10)
        naive = AggregationUnit().simulate_naive(stream)
        assert naive.tuples == sum(len(p) for p in stream)
        assert naive.cache_hits == 0


class TestStalls:
    def test_scoreboard_overflow_stalls(self):
        """A batch with more unique Gaussians than scoreboard entries must
        expose DRAM latency."""
        cfg = AggregationConfig(scoreboard_bytes=16 * 16)  # 16 entries
        unit = AggregationUnit(cfg)
        big_batch = [np.arange(500)] * 4
        trace = unit.simulate(big_batch)
        assert trace.stall_cycles > 0

    def test_cached_stream_has_few_stalls(self):
        ids = np.arange(20)
        stream = [ids] * 40
        trace = AggregationUnit().simulate(stream)
        later_share = trace.stall_cycles / max(trace.cycles, 1)
        assert later_share < 0.6
