"""composite_backward against a brute-force finite-difference reference.

The main gradcheck suites differentiate through the full pipeline; this
one isolates the compositing core itself, so a regression localizes to
the suffix-sum/transmittance algebra rather than projection.
"""

import numpy as np
import pytest

from repro.render import composite_backward, composite_forward

BG = np.array([0.3, 0.1, 0.2])


def random_inputs(seed=0, n=12, p=3):
    rng = np.random.default_rng(seed)
    return dict(
        pixels=rng.uniform(0, 6, (p, 2)),
        mean2d=rng.uniform(0, 6, (n, 2)),
        sigma2d=rng.uniform(0.5, 2.0, n),
        depth=np.sort(rng.uniform(1, 4, n)),
        opacity=rng.uniform(0.1, 0.9, n),
        color=rng.uniform(0, 1, (n, 3)),
    )


def scalar_loss(inputs, wc, wd, ws):
    color, depth, sil, _ = composite_forward(
        inputs["pixels"], inputs["mean2d"], inputs["sigma2d"],
        inputs["depth"], inputs["opacity"], inputs["color"], BG)
    return float((color * wc).sum() + (depth * wd).sum() + (sil * ws).sum())


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pair_gradients_match_finite_differences(seed):
    inputs = random_inputs(seed)
    rng = np.random.default_rng(100 + seed)
    wc = rng.normal(size=(3, 3))
    wd = rng.normal(size=3)
    ws = rng.normal(size=3)

    _, _, _, cache = composite_forward(
        inputs["pixels"], inputs["mean2d"], inputs["sigma2d"],
        inputs["depth"], inputs["opacity"], inputs["color"], BG)
    pair = composite_backward(
        cache, inputs["mean2d"], inputs["sigma2d"], inputs["depth"],
        inputs["opacity"], inputs["color"], wc, wd, ws)

    eps = 1e-6

    def num_grad(field, index, component=None):
        plus = {k: v.copy() for k, v in inputs.items()}
        minus = {k: v.copy() for k, v in inputs.items()}
        if component is None:
            plus[field][index] += eps
            minus[field][index] -= eps
        else:
            plus[field][index, component] += eps
            minus[field][index, component] -= eps
        return (scalar_loss(plus, wc, wd, ws)
                - scalar_loss(minus, wc, wd, ws)) / (2 * eps)

    for g in range(6):
        assert np.isclose(num_grad("opacity", g), pair.d_opacity[g],
                          rtol=1e-3, atol=1e-6)
        assert np.isclose(num_grad("sigma2d", g), pair.d_sigma2d[g],
                          rtol=1e-3, atol=1e-6)
        for c in range(2):
            assert np.isclose(num_grad("mean2d", g, c), pair.d_mean2d[g, c],
                              rtol=1e-3, atol=1e-6)
        for c in range(3):
            assert np.isclose(num_grad("color", g, c), pair.d_color[g, c],
                              rtol=1e-3, atol=1e-6)
        assert np.isclose(num_grad("depth", g), pair.d_depth[g],
                          rtol=1e-3, atol=1e-6)


def test_gradients_vanish_for_noncontributing_pairs():
    """A splat far beyond the pixel's alpha threshold gets zero gradient."""
    inputs = random_inputs(5, n=4, p=1)
    inputs["mean2d"][2] = [500.0, 500.0]  # far away
    _, _, _, cache = composite_forward(
        inputs["pixels"], inputs["mean2d"], inputs["sigma2d"],
        inputs["depth"], inputs["opacity"], inputs["color"], BG)
    pair = composite_backward(
        cache, inputs["mean2d"], inputs["sigma2d"], inputs["depth"],
        inputs["opacity"], inputs["color"],
        np.ones((1, 3)), np.ones(1), np.ones(1))
    assert pair.d_opacity[2] == 0.0
    assert np.all(pair.d_mean2d[2] == 0.0)
    assert np.all(pair.d_color[2] == 0.0)


def test_empty_candidate_list():
    _, _, _, cache = composite_forward(
        np.array([[1.0, 1.0]]), np.zeros((0, 2)), np.zeros(0), np.zeros(0),
        np.zeros(0), np.zeros((0, 3)), BG)
    pair = composite_backward(cache, np.zeros((0, 2)), np.zeros(0),
                              np.zeros(0), np.zeros(0), np.zeros((0, 3)),
                              np.ones((1, 3)), np.ones(1), np.ones(1))
    assert pair.num_pairs_touched == 0
    assert pair.d_mean2d.shape == (0, 2)
