"""DRAM bank/row-buffer model."""

import numpy as np
import pytest

from repro.hw.dram import DramConfig, DramModel, DramStats


class TestAddressMapping:
    def test_same_row_same_bank(self):
        cfg = DramConfig(banks=8, row_bytes=2048)
        assert cfg.locate(0) == cfg.locate(2047)

    def test_adjacent_rows_different_banks(self):
        cfg = DramConfig(banks=8, row_bytes=2048)
        b0, _ = cfg.locate(0)
        b1, _ = cfg.locate(2048)
        assert b0 != b1


class TestReplay:
    def test_sequential_stream_mostly_hits(self):
        model = DramModel()
        stats = model.replay(range(0, 64 * 1024, 32), 32)
        assert stats.hit_rate > 0.9

    def test_scattered_stream_mostly_misses(self):
        rng = np.random.default_rng(0)
        model = DramModel()
        addrs = rng.integers(0, 1 << 30, 4000) * 32
        stats = model.replay(addrs, 32)
        assert stats.hit_rate < 0.1

    def test_cycles_reflect_hit_miss_mix(self):
        cfg = DramConfig()
        model = DramModel(cfg)
        stats = model.replay([0, 8, 1 << 20, (1 << 20) + 8], 8)
        expected = (stats.hits * cfg.hit_cycles
                    + stats.misses * cfg.miss_cycles)
        assert stats.cycles == expected

    def test_energy_scales_with_bytes(self):
        model = DramModel()
        small = model.replay([0, 1 << 20], 8)
        model.reset()
        big = model.replay([0, 1 << 20], 64)
        assert big.energy_pj > small.energy_pj

    def test_reset_clears_rows(self):
        model = DramModel()
        s1 = DramStats()
        model.access(0, 32, s1)
        model.reset()
        s2 = DramStats()
        model.access(0, 32, s2)
        assert s2.misses == 1, "after reset the row must be closed"

    def test_empty_replay(self):
        stats = DramModel().replay([], 32)
        assert stats.accesses == 0
        assert stats.hit_rate == 1.0


class TestGaussianFetches:
    def test_local_ids_beat_scattered(self):
        rng = np.random.default_rng(1)
        base = rng.integers(0, 1000)
        local = (base + rng.integers(-30, 30, 2000)) % 100000
        scattered = rng.integers(0, 100000, 2000)
        model = DramModel()
        s_local = model.replay_gaussian_fetches(local)
        s_scattered = model.replay_gaussian_fetches(scattered)
        assert s_local.hit_rate > s_scattered.hit_rate
        assert s_local.cycles < s_scattered.cycles

    def test_bank_distribution_tracked(self):
        model = DramModel()
        stats = model.replay(range(0, 8 * 2048, 2048), 32)
        assert len(stats.per_bank_accesses) == 8
