"""Prometheus exporter: name sanitization, exposition render/parse
round-trip, and the /metrics–/healthz–/runz HTTP server end-to-end."""

import json
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    TelemetryHTTPServer,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
    serve_telemetry,
)
from repro.obs.telemetry import TelemetryBus, TelemetryConfig


class TestSanitizeMetricName:
    @pytest.mark.parametrize("raw,expected", [
        ("tracking_fwd.num_candidate_pairs",
         "repro_tracking_fwd_num_candidate_pairs"),
        ("slam.pose_error_m", "repro_slam_pose_error_m"),
        ("weird-name with spaces", "repro_weird_name_with_spaces"),
        ("3dgs.gaussians", "repro__3dgs_gaussians"),
        ("already_fine", "repro_already_fine"),
    ])
    def test_cases(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    def test_result_is_always_legal(self):
        import re
        legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for raw in ("", "!!!", "9lives", "a.b.c", "ü"):
            assert legal.match(sanitize_metric_name(raw)), raw


class TestRenderParse:
    def _registry(self):
        reg = MetricsRegistry()
        reg.inc("tracking.iterations", 42)
        reg.set_gauge("slam.pose_error_m", 0.0123)
        reg.observe("tracking.loss", 0.5)
        reg.observe("tracking.loss", 0.25)
        return reg

    def test_round_trip(self):
        reg = self._registry()
        text = render_prometheus(reg.export())
        scrape = parse_prometheus_text(text)
        assert scrape["repro_tracking_iterations_total"] == 42
        assert scrape.types["repro_tracking_iterations_total"] == "counter"
        assert scrape["repro_slam_pose_error_m"] == pytest.approx(0.0123)
        assert scrape.types["repro_slam_pose_error_m"] == "gauge"
        assert scrape["repro_tracking_loss_count"] == 2
        assert scrape["repro_tracking_loss_sum"] == pytest.approx(0.75)
        assert scrape.types["repro_tracking_loss"] == "summary"
        assert scrape["repro_tracking_loss_min"] == pytest.approx(0.25)
        assert scrape["repro_tracking_loss_max"] == pytest.approx(0.5)
        assert scrape["repro_warnings"] == 0

    def test_bus_stats_exported_as_counters(self):
        bus = TelemetryBus(enabled=True)
        bus.subscribe(maxlen=1)
        bus.publish("frame", {})
        bus.publish("frame", {})
        text = render_prometheus(MetricsRegistry().export(),
                                 bus_stats=bus.stats())
        scrape = parse_prometheus_text(text)
        assert scrape["repro_telemetry_published_total"] == 2
        assert scrape["repro_telemetry_dropped_total"] == 1
        assert scrape["repro_telemetry_subscribers"] == 1

    def test_every_sample_has_a_declared_type(self):
        text = render_prometheus(self._registry().export())
        scrape = parse_prometheus_text(text)
        for name in scrape.samples:
            family = name
            for suffix in ("_count", "_sum"):
                if family.endswith(suffix):
                    family = family[:-len(suffix)]
            assert family in scrape.types, name

    def test_output_is_deterministic_and_sorted(self):
        reg = self._registry()
        assert render_prometheus(reg.export()) == render_prometheus(
            reg.export())
        families = [line.split()[2] for line in
                    render_prometheus(reg.export()).splitlines()
                    if line.startswith("# TYPE")]
        assert families == sorted(families)

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("this is { not a metric\n")
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text("repro_x twelve\n")
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE repro_x sparkline\n")

    def test_parse_accepts_labels_comments_and_blank_lines(self):
        scrape = parse_prometheus_text(
            "# HELP whatever\n\n"
            "up{job=\"slam\",instance=\"local\"} 1\n"
            "# TYPE repro_inf gauge\nrepro_inf +Inf\n")
        assert scrape["up"] == 1
        assert scrape["repro_inf"] == float("inf")


@pytest.fixture
def server():
    """An exporter on an ephemeral port over its own private bus."""
    bus = TelemetryBus(enabled=True)
    registry = MetricsRegistry()
    registry.inc("tracking.iterations", 7)
    srv = TelemetryHTTPServer(TelemetryConfig(port=0), registry=registry,
                              bus_=bus)
    srv.start()
    try:
        yield srv, bus
    finally:
        srv.stop()


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


class TestHTTPServer:
    def test_metrics_endpoint_parses_with_zero_drops(self, server):
        srv, bus = server
        bus.publish("frame", {"frame": 0, "gaussians": 10})
        status, ctype, body = _get(f"{srv.url}/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        scrape = parse_prometheus_text(body)
        assert scrape["repro_tracking_iterations_total"] == 7
        assert scrape["repro_telemetry_published_total"] == 1
        assert scrape["repro_telemetry_dropped_total"] == 0

    def test_healthz_flips_to_alerting(self, server):
        srv, bus = server
        _, _, body = _get(f"{srv.url}/healthz")
        assert json.loads(body)["status"] == "ok"
        bus.publish("alert", {"monitor": "pose_jump", "frame": 3})
        _, _, body = _get(f"{srv.url}/healthz")
        doc = json.loads(body)
        assert doc["status"] == "alerting"
        assert doc["alert_count"] == 1
        assert doc["alerts"][0]["monitor"] == "pose_jump"
        assert doc["bus"]["published"] == 1

    def test_runz_reflects_run_stream(self, server):
        srv, bus = server
        bus.publish("header", {"frames": 4, "algorithm": "splatam"})
        for i in range(2):
            bus.publish("frame", {
                "frame": i, "pose_error_m": 0.01, "gaussians": 50 + i,
                "wall_time_s": 0.2})
        _, ctype, body = _get(f"{srv.url}/runz")
        assert ctype == "application/json"
        doc = json.loads(body)
        assert doc["frames_total"] == 4
        assert doc["frames_seen"] == 2
        assert doc["frame"] == 1
        assert doc["gaussians"] == 51
        assert doc["fps"] == pytest.approx(5.0)
        assert not doc["done"]
        bus.publish("summary", {"frames": 2})
        _, _, body = _get(f"{srv.url}/runz")
        assert json.loads(body)["done"]

    def test_root_and_404(self, server):
        srv, _ = server
        status, _, body = _get(f"{srv.url}/")
        assert status == 200 and "/metrics" in body
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{srv.url}/nope")
        assert err.value.code == 404

    def test_stop_reports_stats_and_unsubscribes(self):
        bus = TelemetryBus(enabled=True)
        srv = TelemetryHTTPServer(TelemetryConfig(port=0), bus_=bus)
        srv.start()
        bus.publish("frame", {"frame": 0})
        stats = srv.stop()
        assert stats["delivered"] == 1 and stats["dropped"] == 0
        assert bus.subscriber_count == 0

    def test_serve_telemetry_enables_the_bus(self):
        bus = TelemetryBus()
        assert not bus.enabled
        srv = serve_telemetry(TelemetryConfig(port=0),
                              registry=MetricsRegistry(), bus_=bus)
        try:
            assert bus.enabled
            status, _, _ = _get(f"{srv.url}/metrics")
            assert status == 200
        finally:
            srv.stop()
            bus.disable()
