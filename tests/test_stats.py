"""PipelineStats: counter merging and the warp-utilization model."""

import numpy as np
import pytest

from repro.render import PipelineStats


class TestMerge:
    def test_counters_add(self):
        a = PipelineStats(num_candidate_pairs=10, num_contrib_pairs=4,
                          num_pixels=2)
        b = PipelineStats(num_candidate_pairs=5, num_contrib_pairs=1,
                          num_pixels=3)
        a.merge(b)
        assert a.num_candidate_pairs == 15
        assert a.num_contrib_pairs == 5
        assert a.num_pixels == 5

    def test_gaussians_take_max(self):
        a = PipelineStats(num_gaussians=100)
        a.merge(PipelineStats(num_gaussians=70))
        assert a.num_gaussians == 100
        a.merge(PipelineStats(num_gaussians=130))
        assert a.num_gaussians == 130

    def test_lists_extend(self):
        a = PipelineStats(per_pixel_contribs=[1, 2])
        a.merge(PipelineStats(per_pixel_contribs=[3]))
        assert a.per_pixel_contribs == [1, 2, 3]

    def test_tile_work_and_ids_extend(self):
        a = PipelineStats(tile_work=[(5, 4, 3)])
        b = PipelineStats(tile_work=[(7, 2, 6)],
                          pixel_contrib_ids=[np.array([1, 2])])
        a.merge(b)
        assert len(a.tile_work) == 2
        assert len(a.pixel_contrib_ids) == 1

    def test_merge_returns_self(self):
        a = PipelineStats()
        assert a.merge(PipelineStats()) is a


class TestDerivedQuantities:
    def test_alpha_pass_rate(self):
        s = PipelineStats(num_candidate_pairs=100, num_contrib_pairs=25)
        assert s.alpha_pass_rate == 0.25

    def test_alpha_pass_rate_empty(self):
        assert PipelineStats().alpha_pass_rate == 0.0

    def test_mean_contribs(self):
        s = PipelineStats(per_pixel_contribs=[2, 4, 6])
        assert s.mean_contribs_per_pixel == 4.0

    def test_mean_contribs_empty(self):
        assert PipelineStats().mean_contribs_per_pixel == 0.0


class TestWarpUtilization:
    def test_uniform_work_is_full(self):
        s = PipelineStats(per_pixel_contribs=[10] * 64)
        assert np.isclose(s.warp_utilization(32), 1.0)

    def test_single_hot_lane_is_one_over_warp(self):
        contribs = [32] + [0] * 31
        s = PipelineStats(per_pixel_contribs=contribs)
        assert np.isclose(s.warp_utilization(32), 1.0 / 32.0)

    def test_divergent_below_one(self):
        rng = np.random.default_rng(0)
        s = PipelineStats(per_pixel_contribs=list(rng.integers(0, 60, 256)))
        u = s.warp_utilization(32)
        assert 0.0 < u < 1.0

    def test_empty_is_full(self):
        assert PipelineStats().warp_utilization() == 1.0

    def test_all_zero_is_full(self):
        s = PipelineStats(per_pixel_contribs=[0, 0, 0])
        assert s.warp_utilization() == 1.0

    def test_padding_handles_partial_warp(self):
        s = PipelineStats(per_pixel_contribs=[10] * 40)  # 1.25 warps
        u = s.warp_utilization(32)
        assert 0.0 < u <= 1.0
