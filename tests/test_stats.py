"""PipelineStats: counter merging, image-dimension propagation, and the
warp-utilization model."""

import numpy as np
import pytest

from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.render import PipelineStats, backward_full, render_full


class TestMerge:
    def test_counters_add(self):
        a = PipelineStats(num_candidate_pairs=10, num_contrib_pairs=4,
                          num_pixels=2)
        b = PipelineStats(num_candidate_pairs=5, num_contrib_pairs=1,
                          num_pixels=3)
        a.merge(b)
        assert a.num_candidate_pairs == 15
        assert a.num_contrib_pairs == 5
        assert a.num_pixels == 5

    def test_gaussians_take_max(self):
        a = PipelineStats(num_gaussians=100)
        a.merge(PipelineStats(num_gaussians=70))
        assert a.num_gaussians == 100
        a.merge(PipelineStats(num_gaussians=130))
        assert a.num_gaussians == 130

    def test_lists_extend(self):
        a = PipelineStats(per_pixel_contribs=[1, 2])
        a.merge(PipelineStats(per_pixel_contribs=[3]))
        assert a.per_pixel_contribs == [1, 2, 3]

    def test_tile_work_and_ids_extend(self):
        a = PipelineStats(tile_work=[(5, 4, 3)])
        b = PipelineStats(tile_work=[(7, 2, 6)],
                          pixel_contrib_ids=[np.array([1, 2])])
        a.merge(b)
        assert len(a.tile_work) == 2
        assert len(a.pixel_contrib_ids) == 1

    def test_merge_returns_self(self):
        a = PipelineStats()
        assert a.merge(PipelineStats()) is a

    def test_image_dims_propagate_into_empty_accumulator(self):
        # The SLAM system accumulates per-stage stats into empty
        # PipelineStats objects; frame geometry must survive the merge.
        acc = PipelineStats()
        acc.merge(PipelineStats(image_width=64, image_height=48))
        assert acc.image_width == 64
        assert acc.image_height == 48
        acc.merge(PipelineStats())  # a dimension-less pass can't erase them
        assert acc.image_width == 64
        assert acc.image_height == 48

    def test_image_dims_take_max(self):
        acc = PipelineStats(image_width=32, image_height=24)
        acc.merge(PipelineStats(image_width=64, image_height=48))
        assert (acc.image_width, acc.image_height) == (64, 48)


def _make_scene(n=60, width=32, height=24, seed=0):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-1, 1, n), rng.uniform(-0.8, 0.8, n),
                        rng.uniform(1.2, 4, n)], axis=-1),
        scales=rng.uniform(0.05, 0.25, n),
        opacities=rng.uniform(0.2, 0.9, n),
        colors=rng.uniform(0.1, 0.9, (n, 3)),
    )
    return cloud, Camera(Intrinsics.from_fov(width, height, 70.0))


class TestImageDimsPopulated:
    """Both pipelines must stamp frame geometry on every pass's stats."""

    BG = np.zeros(3)

    def test_tile_pipeline_forward_and_backward(self):
        cloud, cam = _make_scene()
        res = render_full(cloud, cam, self.BG, tile_size=8)
        assert res.stats.image_width == 32
        assert res.stats.image_height == 24
        grads = backward_full(res, cloud, cam,
                              np.ones_like(res.color),
                              np.ones_like(res.depth),
                              np.ones_like(res.silhouette))
        assert grads.stats.image_width == 32
        assert grads.stats.image_height == 24

    def test_pixel_pipeline_forward_and_backward(self):
        from repro.core.pixel_pipeline import backward_sparse, render_sparse

        cloud, cam = _make_scene()
        pixels = np.stack([np.arange(8) * 3, np.arange(8) * 2], axis=-1)
        res = render_sparse(cloud, cam, pixels, self.BG)
        assert res.stats.image_width == 32
        assert res.stats.image_height == 24
        grads = backward_sparse(res, cloud, cam,
                                np.ones_like(res.color),
                                np.ones_like(res.depth),
                                np.ones_like(res.silhouette))
        assert grads.stats.image_width == 32
        assert grads.stats.image_height == 24


class TestDerivedQuantities:
    def test_alpha_pass_rate(self):
        s = PipelineStats(num_candidate_pairs=100, num_contrib_pairs=25)
        assert s.alpha_pass_rate == 0.25

    def test_alpha_pass_rate_empty(self):
        assert PipelineStats().alpha_pass_rate == 0.0

    def test_mean_contribs(self):
        s = PipelineStats(per_pixel_contribs=[2, 4, 6])
        assert s.mean_contribs_per_pixel == 4.0

    def test_mean_contribs_empty(self):
        assert PipelineStats().mean_contribs_per_pixel == 0.0


class TestWarpUtilization:
    def test_uniform_work_is_full(self):
        s = PipelineStats(per_pixel_contribs=[10] * 64)
        assert np.isclose(s.warp_utilization(32), 1.0)

    def test_single_hot_lane_is_one_over_warp(self):
        contribs = [32] + [0] * 31
        s = PipelineStats(per_pixel_contribs=contribs)
        assert np.isclose(s.warp_utilization(32), 1.0 / 32.0)

    def test_divergent_below_one(self):
        rng = np.random.default_rng(0)
        s = PipelineStats(per_pixel_contribs=list(rng.integers(0, 60, 256)))
        u = s.warp_utilization(32)
        assert 0.0 < u < 1.0

    def test_empty_is_full(self):
        assert PipelineStats().warp_utilization() == 1.0

    def test_all_zero_is_full(self):
        s = PipelineStats(per_pixel_contribs=[0, 0, 0])
        assert s.warp_utilization() == 1.0

    def test_padding_handles_partial_warp(self):
        s = PipelineStats(per_pixel_contribs=[10] * 40)  # 1.25 warps
        u = s.warp_utilization(32)
        assert 0.0 < u <= 1.0
