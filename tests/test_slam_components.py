"""Tracker, mapper, keyframes, and algorithm configs."""

import numpy as np
import pytest

from repro.core import Splatonic, SplatonicConfig
from repro.datasets import make_replica_sequence
from repro.gaussians import Camera, se3_exp, se3_inverse, se3_log
from repro.metrics import psnr
from repro.render import render_full
from repro.slam import (
    ALGORITHMS,
    SPLATAM,
    Keyframe,
    KeyframeBuffer,
    Mapper,
    Tracker,
    get_algorithm,
)

BG = np.full(3, 0.05)


@pytest.fixture(scope="module")
def scene():
    seq = make_replica_sequence("room0", n_frames=4, width=64, height=48,
                                surface_density=10)
    return seq


class TestAlgorithmConfigs:
    def test_registry_has_four(self):
        assert set(ALGORITHMS) == {"splatam", "monogs", "gsslam", "flashslam"}

    def test_lookup(self):
        assert get_algorithm("splatam").name == "splatam"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_algorithm("orb-slam")

    def test_mapping_cadence_in_paper_range(self):
        for cfg in ALGORITHMS.values():
            assert 4 <= cfg.map_every <= 8, "paper: mapping every 4-8 frames"

    def test_with_overrides(self):
        cfg = SPLATAM.with_overrides(tracking_iters=5)
        assert cfg.tracking_iters == 5
        assert SPLATAM.tracking_iters != 5


class TestTracker:
    def test_recovers_perturbed_pose_sparse(self, scene):
        frame = scene[1]
        rng = np.random.default_rng(0)
        xi = rng.normal(0, 0.02, 6)
        init = frame.gt_pose_c2w @ se3_exp(xi)
        tracker = Tracker(SPLATAM, scene.intrinsics,
                          Splatonic(SplatonicConfig(tracking_tile=8),
                                    rng=np.random.default_rng(0)),
                          "sparse", BG)
        res = tracker.track_frame(scene.gt_cloud, init, frame.color,
                                  frame.depth)
        err = np.linalg.norm(se3_log(
            se3_inverse(frame.gt_pose_c2w) @ res.pose_c2w))
        assert err < np.linalg.norm(xi) / 3, "tracking must reduce pose error"

    def test_recovers_perturbed_pose_dense(self, scene):
        frame = scene[1]
        xi = np.array([0.02, -0.01, 0.015, 0.005, -0.01, 0.008])
        init = frame.gt_pose_c2w @ se3_exp(xi)
        tracker = Tracker(SPLATAM.with_overrides(tracking_iters=30),
                          scene.intrinsics, Splatonic(), "dense", BG)
        res = tracker.track_frame(scene.gt_cloud, init, frame.color,
                                  frame.depth)
        err = np.linalg.norm(se3_log(
            se3_inverse(frame.gt_pose_c2w) @ res.pose_c2w))
        assert err < np.linalg.norm(xi)

    def test_already_converged_stays(self, scene):
        frame = scene[1]
        tracker = Tracker(SPLATAM, scene.intrinsics,
                          Splatonic(rng=np.random.default_rng(1)),
                          "sparse", BG)
        res = tracker.track_frame(scene.gt_cloud, frame.gt_pose_c2w,
                                  frame.color, frame.depth)
        err = np.linalg.norm(se3_log(
            se3_inverse(frame.gt_pose_c2w) @ res.pose_c2w))
        assert err < 0.01

    def test_stats_accumulated(self, scene):
        frame = scene[1]
        tracker = Tracker(SPLATAM, scene.intrinsics,
                          Splatonic(rng=np.random.default_rng(2)),
                          "sparse", BG)
        res = tracker.track_frame(scene.gt_cloud, frame.gt_pose_c2w,
                                  frame.color, frame.depth, max_iters=5)
        assert res.forward_stats.num_pixels > 0
        assert res.backward_stats.num_atomic_adds >= 0
        assert res.iterations >= 1

    def test_invalid_mode(self, scene):
        with pytest.raises(ValueError):
            Tracker(SPLATAM, scene.intrinsics, Splatonic(), "hybrid")

    def test_sparse_requires_splatonic(self, scene):
        with pytest.raises(ValueError):
            Tracker(SPLATAM, scene.intrinsics, None, "sparse")


class TestMapper:
    def test_optimization_improves_frame(self, scene):
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        # Start from a degraded copy of the GT cloud.
        cloud = scene.gt_cloud.copy()
        rng = np.random.default_rng(0)
        cloud.colors = np.clip(
            cloud.colors + rng.normal(0, 0.15, cloud.colors.shape), 0, 1)
        cam = Camera(scene.intrinsics, frame.gt_pose_c2w)
        before = psnr(render_full(cloud, cam, BG, keep_cache=False).color,
                      frame.color)
        mapper = Mapper(SPLATAM.with_overrides(mapping_iters=12),
                        scene.intrinsics,
                        Splatonic(rng=np.random.default_rng(0)),
                        "sparse", BG)
        result = mapper.map_frame(cloud, kf, [kf])
        after = psnr(render_full(result.cloud, cam, BG,
                                 keep_cache=False).color, frame.color)
        assert after > before

    def test_densify_adds_gaussians_for_unseen(self, scene):
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        mapper = Mapper(SPLATAM, scene.intrinsics,
                        Splatonic(rng=np.random.default_rng(0)),
                        "sparse", BG)
        gamma = np.zeros(frame.depth.shape)
        gamma[:8, :8] = 0.9  # unseen corner
        cloud = scene.gt_cloud
        grown = mapper.densify(cloud, kf, gamma)
        assert len(grown) == len(cloud) + 64

    def test_densify_noop_when_all_seen(self, scene):
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        mapper = Mapper(SPLATAM, scene.intrinsics, Splatonic(), "sparse", BG)
        grown = mapper.densify(scene.gt_cloud, kf,
                               np.zeros(frame.depth.shape))
        assert len(grown) == len(scene.gt_cloud)

    def test_prunes_collapsed_gaussians(self, scene):
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        cloud = scene.gt_cloud.copy()
        cloud.logit_opacities[:5] = -12.0  # effectively transparent
        mapper = Mapper(SPLATAM.with_overrides(mapping_iters=1),
                        scene.intrinsics,
                        Splatonic(rng=np.random.default_rng(0)),
                        "sparse", BG)
        result = mapper.map_frame(cloud, kf, [kf])
        assert result.num_pruned >= 5


class TestTextureWeightMemo:
    """Keyframe colors never change, so the Sobel texture weight is
    memoized on the keyframe — and must leave the drawn mapping sample
    sets bit-identical to an on-the-fly recompute."""

    def test_memoized_weight_matches_recompute(self, scene):
        from repro.core.features import sobel_magnitude

        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        assert np.array_equal(kf.texture_weight(),
                              sobel_magnitude(frame.color))

    def test_weight_cached_on_keyframe(self, scene):
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        first = kf.texture_weight()
        assert kf.texture_weight() is first  # no recompute

    def test_sample_sets_identical_cached_vs_recomputed(self, scene):
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        gamma = np.full(frame.depth.shape, 0.4)
        fresh = Splatonic(rng=np.random.default_rng(7))
        cached = Splatonic(rng=np.random.default_rng(7))
        a = fresh.sample_mapping(gamma, frame.color)
        b = cached.sample_mapping(gamma, frame.color,
                                  weight=kf.texture_weight())
        assert np.array_equal(a.all_pixels, b.all_pixels)
        assert a.counts() == b.counts()

    def test_cache_does_not_break_membership(self, scene):
        """Dataclass equality (`kf in window`) still short-circuits on
        the index — the cache field is excluded from comparison."""
        frame = scene[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        other = Keyframe(1, frame.gt_pose_c2w, frame.color, frame.depth)
        kf.texture_weight()
        assert kf in [kf, other]
        assert other in [kf, other]


class TestKeyframeBuffer:
    def test_cadence(self):
        buf = KeyframeBuffer(keyframe_every=4, window=3)
        added = [buf.maybe_add(i, np.eye(4), None, None) for i in range(9)]
        assert added == [True, False, False, False,
                         True, False, False, False, True]
        assert len(buf) == 3

    def test_select_includes_current_and_anchor(self):
        buf = KeyframeBuffer(keyframe_every=2, window=2)
        for i in range(0, 10, 2):
            buf.maybe_add(i, np.eye(4), None, None)
        current = Keyframe(11, np.eye(4), None, None)
        window = buf.select(current)
        indices = [kf.index for kf in window]
        assert 0 in indices, "anchor keyframe kept"
        assert 11 in indices, "current frame included"
        assert len(window) <= 2 + 2

    def test_select_dedupes_current(self):
        buf = KeyframeBuffer(keyframe_every=1, window=3)
        for i in range(4):
            buf.maybe_add(i, np.eye(4), None, None)
        current = buf._keyframes[-1]
        window = buf.select(current)
        assert len([kf for kf in window if kf.index == current.index]) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KeyframeBuffer(0, 3)
        with pytest.raises(ValueError):
            KeyframeBuffer(2, 0)
