"""Configuration plumbing of the hardware models."""

import numpy as np
import pytest

from repro.hw import (
    GauSpuAccelerator,
    GauSpuConfig,
    GpuSpec,
    GsArchAccelerator,
    GsArchConfig,
    SplatonicAccelerator,
    SplatonicHwConfig,
    splatonic_area,
)


class TestSplatonicConfig:
    def test_defaults_match_section_vi(self):
        cfg = SplatonicHwConfig()
        assert cfg.projection_units == 8
        assert cfg.alpha_filters_per_unit == 4
        assert cfg.sorting_units == 4
        assert cfg.raster_engines == 4
        assert cfg.engine_buffer_bytes == 8 * 1024
        assert cfg.global_buffer_bytes == 64 * 1024
        assert cfg.aggregation.gaussian_cache_bytes == 32 * 1024
        assert cfg.aggregation.scoreboard_bytes == 8 * 1024
        assert cfg.aggregation.channels == 4

    def test_derived_throughputs(self):
        cfg = SplatonicHwConfig()
        assert cfg.alpha_checks_per_cycle == 32
        assert cfg.render_pairs_per_cycle == 16
        assert cfg.reverse_pairs_per_cycle == 16

    def test_with_overrides(self):
        cfg = SplatonicHwConfig().with_overrides(raster_engines=8)
        assert cfg.raster_engines == 8
        assert cfg.projection_units == 8

    def test_frozen(self):
        with pytest.raises(Exception):
            SplatonicHwConfig().raster_engines = 2


class TestBaselineConfigs:
    def test_gsarch_overrides(self):
        cfg = GsArchConfig().with_overrides(render_engines=2)
        assert cfg.render_engines == 2

    def test_gauspu_overrides(self):
        cfg = GauSpuConfig().with_overrides(sync_overhead_s=1e-4)
        assert cfg.sync_overhead_s == 1e-4

    def test_models_accept_custom_configs(self):
        GsArchAccelerator(GsArchConfig(render_engines=4))
        GauSpuAccelerator(GauSpuConfig(tile_lane_pixels=32))
        SplatonicAccelerator(SplatonicHwConfig(node_nm=16))


class TestGpuSpecDerived:
    def test_throughputs(self):
        spec = GpuSpec(sms=4, cores_per_sm=64, sfu_per_sm=8)
        assert spec.flops_per_cycle == 256
        assert spec.sfu_ops_per_cycle == 32

    def test_orin_ballpark(self):
        spec = GpuSpec()
        assert spec.flops_per_cycle == 1024
        assert 0.5e9 < spec.clock_hz < 2e9


class TestAreaScalesWithConfig:
    def test_more_engines_more_area(self):
        base = splatonic_area(SplatonicHwConfig())
        big = splatonic_area(SplatonicHwConfig(raster_engines=8))
        assert big.components["raster_engines"] == 2 * base.components[
            "raster_engines"]
        # SRAM grows too: each engine carries its double buffer.
        assert big.components["sram"] > base.components["sram"]

    def test_projection_area_linear(self):
        a4 = splatonic_area(SplatonicHwConfig(projection_units=4))
        a8 = splatonic_area(SplatonicHwConfig(projection_units=8))
        assert np.isclose(a8.components["projection_units"],
                          2 * a4.components["projection_units"])
