"""Property-based tests of the compositing core's physical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import composite_forward

BG = np.zeros(3)


def random_list(rng, n):
    """A depth-sorted candidate list around the origin pixel."""
    return dict(
        mean2d=rng.uniform(-3, 3, (n, 2)),
        sigma2d=rng.uniform(0.5, 2.0, n),
        depth=np.sort(rng.uniform(1, 5, n)),
        opacity=rng.uniform(0.05, 0.95, n),
        color=rng.uniform(0, 1, (n, 3)),
    )


PIXEL = np.array([[0.0, 0.0]])


@given(st.integers(0, 10_000), st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_outputs_bounded(seed, n):
    """Color and silhouette stay inside their physical ranges."""
    rng = np.random.default_rng(seed)
    color, depth, sil, _ = composite_forward(PIXEL, background=BG,
                                             **random_list(rng, n))
    assert np.all(color >= -1e-12) and np.all(color <= 1 + 1e-12)
    assert 0 <= sil[0] <= 1 + 1e-12
    assert depth[0] >= 0


@given(st.integers(0, 10_000), st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_transparent_gaussian_is_identity(seed, n):
    """Appending a fully transparent Gaussian never changes the output."""
    rng = np.random.default_rng(seed)
    args = random_list(rng, n)
    base_color, base_depth, base_sil, _ = composite_forward(
        PIXEL, background=BG, **args)
    extended = {
        "mean2d": np.vstack([args["mean2d"], [[0.0, 0.0]]]),
        "sigma2d": np.append(args["sigma2d"], 1.0),
        "depth": np.append(args["depth"], 6.0),
        "opacity": np.append(args["opacity"], 1e-9),
        "color": np.vstack([args["color"], [[1.0, 1.0, 1.0]]]),
    }
    color, depth, sil, _ = composite_forward(PIXEL, background=BG,
                                             **extended)
    assert np.allclose(color, base_color, atol=1e-9)
    assert np.allclose(depth, base_depth, atol=1e-9)
    assert np.allclose(sil, base_sil, atol=1e-9)


@given(st.integers(0, 10_000), st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_gaussian_behind_opaque_wall_invisible(seed, n):
    """A Gaussian placed behind an (almost) opaque front splat at the
    same position contributes (almost) nothing."""
    rng = np.random.default_rng(seed)
    args = random_list(rng, n)
    # Front wall: huge opaque splat right on the pixel at depth 0.5.
    wall = {
        "mean2d": np.vstack([[[0.0, 0.0]], args["mean2d"]]),
        "sigma2d": np.append(50.0, args["sigma2d"]),
        "depth": np.append(0.5, args["depth"]),
        "opacity": np.append(0.999, args["opacity"]),  # clamped to a_max
        "color": np.vstack([[[1.0, 0.0, 0.0]]], ).repeat(1, axis=0),
    }
    wall["color"] = np.vstack([[[1.0, 0.0, 0.0]], args["color"]])
    color, _, sil, cache = composite_forward(PIXEL, background=BG, **wall)
    # Transmittance behind the wall is <= 1 - ALPHA_MAX ~ 1e-3.
    assert color[0, 1] < 2e-3 and color[0, 2] < 2e-3
    assert sil[0] > 0.998


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_batch_rows_equal_individual_pixels(seed):
    """Compositing a batch of pixels equals per-pixel composites."""
    rng = np.random.default_rng(seed)
    args = random_list(rng, 12)
    pixels = rng.uniform(-2, 2, (5, 2))
    batch_color, batch_depth, batch_sil, _ = composite_forward(
        pixels, background=BG, **args)
    for k in range(5):
        c, d, s, _ = composite_forward(pixels[k:k + 1], background=BG,
                                       **args)
        assert np.allclose(c[0], batch_color[k], atol=1e-12)
        assert np.allclose(d[0], batch_depth[k], atol=1e-12)
        assert np.allclose(s[0], batch_sil[k], atol=1e-12)


@given(st.integers(0, 10_000), st.integers(1, 15))
@settings(max_examples=40, deadline=None)
def test_raising_front_opacity_raises_silhouette(seed, n):
    """Silhouette is monotone in the first Gaussian's opacity."""
    rng = np.random.default_rng(seed)
    args = random_list(rng, n)
    args["mean2d"][0] = [0.0, 0.0]  # make the front Gaussian relevant
    lo = dict(args)
    hi = dict(args)
    lo["opacity"] = args["opacity"].copy()
    hi["opacity"] = args["opacity"].copy()
    lo["opacity"][0] = 0.1
    hi["opacity"][0] = 0.9
    _, _, sil_lo, _ = composite_forward(PIXEL, background=BG, **lo)
    _, _, sil_hi, _ = composite_forward(PIXEL, background=BG, **hi)
    assert sil_hi[0] >= sil_lo[0] - 1e-9


@given(st.integers(0, 10_000), st.integers(1, 15))
@settings(max_examples=30, deadline=None)
def test_depth_bounded_by_list_extent(seed, n):
    """Expected depth lies within [0, max depth] of the list."""
    rng = np.random.default_rng(seed)
    args = random_list(rng, n)
    _, depth, _, _ = composite_forward(PIXEL, background=BG, **args)
    assert 0.0 <= depth[0] <= args["depth"].max() + 1e-9
