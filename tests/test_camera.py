"""Camera model: intrinsics validation, projection round trips, posing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import Camera, Intrinsics, se3_exp


def make_intr(width=64, height=48):
    return Intrinsics.from_fov(width, height, 70.0)


class TestIntrinsics:
    def test_from_fov_centre(self):
        intr = make_intr()
        assert intr.cx == 32.0 and intr.cy == 24.0

    def test_from_fov_focal(self):
        intr = Intrinsics.from_fov(100, 80, 90.0)
        assert np.isclose(intr.fx, 50.0)

    @pytest.mark.parametrize("kwargs", [
        dict(width=0, height=10, fx=1, fy=1, cx=0, cy=0),
        dict(width=10, height=-1, fx=1, fy=1, cx=0, cy=0),
        dict(width=10, height=10, fx=0, fy=1, cx=0, cy=0),
        dict(width=10, height=10, fx=1, fy=-2, cx=0, cy=0),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            Intrinsics(**kwargs)

    def test_matrix(self):
        intr = make_intr()
        K = intr.matrix
        assert K[0, 0] == intr.fx and K[1, 1] == intr.fy
        assert K[0, 2] == intr.cx and K[1, 2] == intr.cy
        assert K[2, 2] == 1.0

    def test_project_centre_ray(self):
        intr = make_intr()
        uv = intr.project(np.array([[0.0, 0.0, 2.0]]))
        assert np.allclose(uv, [[intr.cx, intr.cy]])

    @given(st.floats(0.2, 10.0), st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_backproject_inverts_project(self, z, x, y):
        intr = make_intr()
        p = np.array([[x, y, z]])
        uv = intr.project(p)
        back = intr.backproject(uv, np.array([z]))
        assert np.allclose(back, p, atol=1e-9)

    def test_scaled_halves_everything(self):
        intr = make_intr()
        half = intr.scaled(0.5)
        assert half.width == 32 and half.height == 24
        assert np.isclose(half.fx, intr.fx / 2)

    def test_scaled_preserves_rays(self):
        """The same 3D point projects to proportionally scaled pixels."""
        intr = make_intr()
        half = intr.scaled(0.5)
        p = np.array([[0.3, -0.2, 2.5]])
        assert np.allclose(half.project(p), intr.project(p) * 0.5)

    def test_pixel_grid(self):
        intr = Intrinsics.from_fov(4, 3, 70.0)
        grid = intr.pixel_grid()
        assert grid.shape == (3, 4, 2)
        assert np.allclose(grid[0, 0], [0.5, 0.5])
        assert np.allclose(grid[2, 3], [3.5, 2.5])


class TestCamera:
    def test_identity_pose_is_passthrough(self):
        cam = Camera(make_intr())
        pts = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(cam.world_to_camera(pts), pts)

    def test_world_to_camera_inverts_pose(self):
        rng = np.random.default_rng(0)
        pose = se3_exp(rng.normal(0, 0.4, 6))
        cam = Camera(make_intr(), pose)
        p_cam = rng.normal(size=(9, 3))
        p_world = p_cam @ pose[:3, :3].T + pose[:3, 3]
        assert np.allclose(cam.world_to_camera(p_world), p_cam)

    def test_position(self):
        pose = np.eye(4)
        pose[:3, 3] = [1.0, -2.0, 0.5]
        cam = Camera(make_intr(), pose)
        assert np.allclose(cam.position, [1.0, -2.0, 0.5])

    def test_with_pose_copies(self):
        cam = Camera(make_intr())
        pose = se3_exp(np.array([0.1, 0, 0, 0, 0, 0]))
        cam2 = cam.with_pose(pose)
        pose[0, 3] = 99.0
        assert cam2.pose_c2w[0, 3] != 99.0
        assert np.allclose(cam.pose_c2w, np.eye(4))

    def test_rejects_bad_pose_shape(self):
        with pytest.raises(ValueError):
            Camera(make_intr(), np.eye(3))

    def test_pose_w2c_is_inverse(self):
        pose = se3_exp(np.array([0.3, -0.1, 0.2, 0.05, -0.02, 0.1]))
        cam = Camera(make_intr(), pose)
        assert np.allclose(cam.pose_w2c @ pose, np.eye(4), atol=1e-12)
