"""Cross-run trend analysis and regression triage over the registry."""

import pytest

from repro.core import SplatonicConfig
from repro.datasets import make_replica_sequence
from repro.obs.runsdb import RunRegistry
from repro.obs.triage import (
    TriagePolicy,
    detect_step,
    format_trend,
    metric_series,
    select_metrics,
    triage_runs,
)
from repro.slam import SLAMSystem


@pytest.fixture(scope="module")
def sequence():
    return make_replica_sequence("room0", n_frames=4, width=32, height=24,
                                 surface_density=10)


@pytest.fixture(scope="module")
def perturbed_registry(sequence, tmp_path_factory):
    """Two registered SLAM runs differing only in the tracking tile —
    the acceptance-criterion scenario."""
    reg = RunRegistry(str(tmp_path_factory.mktemp("triage") / "reg"))
    for tile in (8, 4):
        SLAMSystem(
            "splatam", mode="sparse",
            splatonic_config=SplatonicConfig(tracking_tile=tile)).run(
                sequence, registry=reg)
    return reg


def attrib_doc(scenario="tracking/tiny", scale=1.0):
    """Minimal cycle-attribution artifact (AttributionReport.to_dict)."""
    return {
        "scenario": scenario,
        "clock_hz": 1e9,
        "rows": [
            {"pass": "forward", "stage": "projection",
             "unit": "projection + alpha-filter units",
             "cycles": 1000.0, "share": 0.4, "bottleneck": False},
            {"pass": "forward", "stage": "sorting",
             "unit": "sorting units",
             "cycles": 500.0 * scale, "share": 0.2, "bottleneck": True},
        ],
        "totals": {"forward": 1000.0 + 500.0 * scale},
    }


class TestDetectStep:
    def test_flat_series_has_no_step(self):
        assert detect_step([5.0] * 8) is None

    def test_clean_step_found_at_the_right_run(self):
        values = [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        step = detect_step(values, seqs=[10, 11, 12, 13, 14, 15])
        assert step is not None
        assert step.index == 3
        assert step.seq == 13
        assert step.before == 1.0 and step.after == 2.0
        assert step.rel == pytest.approx(1.0)

    def test_noise_below_mad_slack_is_not_a_step(self):
        values = [1.0, 1.2, 0.9, 1.1, 1.05, 1.14, 0.95, 1.08]
        assert detect_step(values) is None

    def test_short_series_returns_none(self):
        assert detect_step([1.0, 2.0, 3.0]) is None


class TestTrend:
    def _runs(self, values, metric="slam.wall.mean_s"):
        return [{"seq": i + 1, "run_id": f"r{i:012d}",
                 "metrics": {metric: v}} for i, v in enumerate(values)]

    def test_metric_series_and_selection(self):
        runs = self._runs([1.0, 2.0])
        assert metric_series(runs, "slam.wall.mean_s") == [
            (1, "r000000000000", 1.0), (2, "r000000000001", 2.0)]
        assert select_metrics(runs, None) == ["slam.wall.mean_s"]
        assert select_metrics(runs, ["*nothing*"]) == []

    def test_format_trend_reports_changepoint(self):
        runs = self._runs([1.0, 1.0, 1.0, 3.0, 3.0, 3.0])
        text = format_trend(runs)
        assert "slam.wall.mean_s" in text
        assert "step @run 4" in text
        assert "1 changepoint(s) detected" in text

    def test_empty_registry_renders_hint(self):
        assert "registry is empty" in format_trend([])


class TestTriageEndToEnd:
    def test_perturbed_stage_is_top_culprit(self, perturbed_registry):
        reg = perturbed_registry
        base, current = reg.get("-2"), reg.get("-1")
        report = triage_runs(reg, base, current)
        assert report.top is not None
        assert report.top.stage == "tracking"
        assert report.top.unit is not None
        delta_keys = {d["key"] for d in report.config_delta}
        assert delta_keys == {"tracking_tile"}
        # The flight differ contributed the first-divergence frame.
        assert report.first_divergence_frame is not None
        assert any(c.startswith("tracking") or c == "counters"
                   for c in report.diverged_channels)

    def test_markdown_and_json_agree_on_the_verdict(self, perturbed_registry,
                                                    tmp_path):
        reg = perturbed_registry
        report = triage_runs(reg, reg.get("-2"), reg.get("-1"))
        text = report.format_markdown()
        assert "**top culprit: tracking" in text
        assert "config delta: tracking_tile: 8 -> 4" in text
        out = tmp_path / "triage.json"
        report.write_json(str(out))
        import json
        doc = json.loads(out.read_text())
        assert doc["culprits"][0]["stage"] == "tracking"
        assert doc["evidence_total"] == report.evidence_total

    def test_self_triage_finds_no_culprits(self, perturbed_registry):
        reg = perturbed_registry
        base = reg.get("-1")
        report = triage_runs(reg, base, base)
        assert report.culprits == []
        assert report.config_delta == []
        assert "no evidence of change" in report.format_markdown()

    def test_attrib_artifacts_name_the_hardware_unit(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        base = reg.register("bench", metrics={"x": 1.0},
                            artifacts={"attrib": attrib_doc(scale=1.0)})
        cur = reg.register("bench", metrics={"x": 1.0},
                           artifacts={"attrib": attrib_doc(scale=2.0)})
        report = triage_runs(reg, base, cur)
        assert report.top is not None
        assert report.top.stage == "tracking"
        assert report.top.unit == "sorting units"
        attrib = [e for c in report.culprits for e in c.evidence
                  if e.source == "attrib"]
        assert len(attrib) == 1
        assert attrib[0].metric == "attrib.forward.sorting.cycles"
        assert attrib[0].rel == pytest.approx(1.0)

    def test_env_mismatch_is_reported(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        base = reg.register("slam", environment={"numpy": "1.26.0",
                                                 "cpu_count": 8})
        cur = reg.register("slam", environment={"numpy": "2.0.0",
                                                "cpu_count": 8})
        report = triage_runs(reg, base, cur)
        assert report.env_mismatches == ["numpy: '1.26.0' vs '2.0.0'"]
        assert "environment mismatch" in report.format_markdown()


class TestPolicy:
    def test_wall_noise_below_floor_is_not_evidence(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        base = reg.register("slam", metrics={"slam.wall.mean_s": 0.100})
        cur = reg.register("slam", metrics={"slam.wall.mean_s": 0.110})
        report = triage_runs(reg, base, cur)
        assert report.culprits == []

    def test_counter_deltas_always_count(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "reg"))
        key = "slam.tracking_fwd.num_pixels"
        base = reg.register("slam", metrics={key: 100.0})
        cur = reg.register("slam", metrics={key: 101.0})
        report = triage_runs(reg, base, cur)
        assert report.top is not None
        assert report.top.stage == "tracking"
        assert report.top.unit == "raster engines (render units)"

    def test_rel_cap_bounds_zero_baselines(self):
        policy = TriagePolicy()
        from repro.obs.triage import _rel_delta
        assert _rel_delta(0.0, 5.0, policy.rel_cap) == policy.rel_cap
        assert _rel_delta(1.0, 1.0, policy.rel_cap) == 0.0
