"""Image-feature operators: Sobel gradients and Harris response."""

import numpy as np
import pytest

from repro.core import harris_response, sobel_gradients, sobel_magnitude, to_grayscale


class TestGrayscale:
    def test_passthrough_2d(self):
        img = np.ones((4, 5))
        assert to_grayscale(img) is not None
        assert to_grayscale(img).shape == (4, 5)

    def test_luma_weights(self):
        img = np.zeros((2, 2, 3))
        img[..., 1] = 1.0  # pure green
        assert np.allclose(to_grayscale(img), 0.587)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((2, 2, 4)))


class TestSobel:
    def test_vertical_edge_horizontal_gradient(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        gx, gy = sobel_gradients(img)
        assert np.abs(gx[8, 7:9]).max() > 0.5
        assert np.abs(gy[8, 4]) < 1e-9

    def test_flat_image_zero_gradient(self):
        assert np.allclose(sobel_magnitude(np.full((8, 8), 0.5)), 0.0)

    def test_magnitude_is_hypot(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(0, 1, (12, 12))
        gx, gy = sobel_gradients(img)
        assert np.allclose(sobel_magnitude(img), np.hypot(gx, gy))

    def test_magnitude_nonnegative(self):
        rng = np.random.default_rng(1)
        img = rng.uniform(0, 1, (10, 10, 3))
        assert np.all(sobel_magnitude(img) >= 0)


class TestHarris:
    def test_corner_beats_edge_and_flat(self):
        img = np.zeros((32, 32))
        img[16:, 16:] = 1.0  # one corner at (16, 16)
        r = harris_response(img)
        corner = r[14:19, 14:19].max()
        edge = r[2:6, 15:18].max()       # along the vertical edge, far away
        flat = r[2:6, 2:6].max()
        assert corner > edge
        assert corner > flat

    def test_edges_are_negative(self):
        """Harris response is negative on pure edges (det small, trace big)."""
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0
        r = harris_response(img)
        assert r[16, 16] < 0

    def test_flat_is_zero(self):
        assert np.allclose(harris_response(np.full((8, 8), 0.3)), 0.0)
