"""Gaussian seeding from RGB-D observations (densification substrate)."""

import numpy as np
import pytest

from repro.gaussians import Camera, GaussianCloud, Intrinsics, seed_from_rgbd
from repro.gaussians.se3 import se3_exp


@pytest.fixture
def camera():
    return Camera(Intrinsics.from_fov(32, 24, 70.0))


def flat_frame(depth_value=2.0):
    color = np.random.default_rng(0).uniform(0, 1, (24, 32, 3))
    depth = np.full((24, 32), depth_value)
    return color, depth


class TestSeeding:
    def test_seeds_land_at_observed_depth(self, camera):
        color, depth = flat_frame(2.0)
        pixels = np.array([[5, 5], [16, 12], [30, 20]])
        cloud = seed_from_rgbd(camera, color, depth, pixels)
        assert len(cloud) == 3
        assert np.allclose(cloud.means[:, 2], 2.0)

    def test_seed_colors_match_image(self, camera):
        color, depth = flat_frame()
        pixels = np.array([[7, 9]])
        cloud = seed_from_rgbd(camera, color, depth, pixels)
        assert np.allclose(cloud.colors[0], color[9, 7])

    def test_reprojects_to_source_pixel(self, camera):
        color, depth = flat_frame(3.0)
        pixels = np.array([[11, 17]])
        cloud = seed_from_rgbd(camera, color, depth, pixels)
        uv = camera.intrinsics.project(camera.world_to_camera(cloud.means))
        assert np.allclose(uv[0], [11.5, 17.5], atol=1e-9)

    def test_respects_camera_pose(self):
        pose = se3_exp(np.array([0.3, -0.2, 0.1, 0.05, 0.1, -0.02]))
        camera = Camera(Intrinsics.from_fov(32, 24, 70.0), pose)
        color, depth = flat_frame(2.5)
        cloud = seed_from_rgbd(camera, color, depth, np.array([[16, 12]]))
        p_cam = camera.world_to_camera(cloud.means)
        assert np.isclose(p_cam[0, 2], 2.5)

    def test_skips_invalid_depth(self, camera):
        color, depth = flat_frame()
        depth[5, 5] = 0.0
        cloud = seed_from_rgbd(camera, color, depth,
                               np.array([[5, 5], [6, 6]]))
        assert len(cloud) == 1

    def test_empty_pixels(self, camera):
        color, depth = flat_frame()
        cloud = seed_from_rgbd(camera, color, depth,
                               np.zeros((0, 2), dtype=int))
        assert len(cloud) == 0

    def test_all_invalid_depth(self, camera):
        color = np.zeros((24, 32, 3))
        depth = np.zeros((24, 32))
        cloud = seed_from_rgbd(camera, color, depth, np.array([[1, 1]]))
        assert len(cloud) == 0

    def test_scale_matches_pixel_footprint(self, camera):
        color, depth = flat_frame(2.0)
        cloud = seed_from_rgbd(camera, color, depth, np.array([[16, 12]]),
                               scale_factor=1.0)
        f = 0.5 * (camera.intrinsics.fx + camera.intrinsics.fy)
        assert np.isclose(cloud.scales[0], 2.0 / f)

    def test_scale_factor_multiplies(self, camera):
        color, depth = flat_frame(2.0)
        a = seed_from_rgbd(camera, color, depth, np.array([[16, 12]]),
                           scale_factor=1.0)
        b = seed_from_rgbd(camera, color, depth, np.array([[16, 12]]),
                           scale_factor=2.0)
        assert np.isclose(b.scales[0], 2 * a.scales[0])

    def test_opacity_applied(self, camera):
        color, depth = flat_frame()
        cloud = seed_from_rgbd(camera, color, depth, np.array([[3, 3]]),
                               initial_opacity=0.42)
        assert np.isclose(cloud.opacities[0], 0.42, atol=1e-9)

    def test_out_of_bounds_pixels_clipped(self, camera):
        color, depth = flat_frame()
        cloud = seed_from_rgbd(camera, color, depth, np.array([[99, 99]]))
        assert len(cloud) == 1  # clipped to the last valid pixel
