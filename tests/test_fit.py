"""Scene-fitting trainer: convergence for both representations."""

import numpy as np
import pytest

from repro.datasets.trajectory import look_at
from repro.fit import FitConfig, FitResult, SceneFitter
from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.render import AnisotropicCloud, render_sparse_anisotropic
from repro.core.pixel_pipeline import render_sparse

BG = np.full(3, 0.05)


def make_iso_cloud(n=25, seed=0):
    rng = np.random.default_rng(seed)
    return GaussianCloud.create(
        means=np.stack([rng.uniform(-0.8, 0.8, n), rng.uniform(-0.6, 0.6, n),
                        rng.uniform(1.5, 3.0, n)], axis=-1),
        scales=rng.uniform(0.08, 0.25, n),
        opacities=rng.uniform(0.4, 0.9, n),
        colors=rng.uniform(0.1, 0.9, (n, 3)),
    )


def make_views(cloud, n_views=3, width=48, height=36, aniso=False):
    """Render dense target views of the ground-truth cloud."""
    from repro.render import render_full
    intr = Intrinsics.from_fov(width, height, 70.0)
    views = []
    for a in np.linspace(-0.3, 0.3, n_views):
        cam = Camera(intr, look_at(np.array([a, -0.05, -0.1]),
                                   np.array([0.0, 0.0, 2.2])))
        if aniso:
            # Dense reference via the sparse renderer on the full lattice.
            uu, vv = np.meshgrid(np.arange(width), np.arange(height))
            px = np.stack([uu.ravel(), vv.ravel()], axis=-1)
            out = render_sparse_anisotropic(cloud, cam, px, BG)
            color = out.color.reshape(height, width, 3)
            depth = out.depth.reshape(height, width)
        else:
            res = render_full(cloud, cam, BG, keep_cache=False)
            color, depth = res.color, res.depth
        views.append((cam, color, depth))
    return views


def perturbed(cloud, sigma=0.04, seed=1):
    rng = np.random.default_rng(seed)
    vec = cloud.pack()
    return cloud.unpack(vec + rng.normal(0, sigma, vec.shape))


class TestValidation:
    def test_needs_views(self):
        with pytest.raises(ValueError):
            SceneFitter(make_iso_cloud(), [])

    def test_needs_known_cloud_type(self):
        views = make_views(make_iso_cloud())
        with pytest.raises(TypeError):
            SceneFitter(object(), views)


class TestIsotropicFitting:
    def test_loss_decreases(self):
        gt = make_iso_cloud()
        views = make_views(gt)
        fitter = SceneFitter(perturbed(gt), views,
                             FitConfig(iterations=60, sample_tile=2))
        result = fitter.fit()
        early = np.mean(result.losses[:5])
        late = np.mean(result.losses[-5:])
        assert late < 0.5 * early

    def test_result_fields(self):
        gt = make_iso_cloud(n=10)
        views = make_views(gt)
        result = SceneFitter(perturbed(gt), views,
                             FitConfig(iterations=8)).fit()
        assert isinstance(result, FitResult)
        assert len(result.losses) == 8
        assert np.isfinite(result.final_loss)

    def test_pruning_drops_transparent(self):
        gt = make_iso_cloud(n=20)
        start = perturbed(gt)
        start.logit_opacities[:4] = -10.0
        views = make_views(gt)
        result = SceneFitter(start, views,
                             FitConfig(iterations=10, prune_every=5)).fit()
        assert result.num_pruned >= 4
        assert len(result.cloud) <= len(start) - 4

    def test_photometric_only_views(self):
        gt = make_iso_cloud(n=12)
        views = [(cam, color, None) for cam, color, _ in make_views(gt)]
        result = SceneFitter(perturbed(gt), views,
                             FitConfig(iterations=20)).fit()
        assert result.losses[-1] < result.losses[0]


class TestAnisotropicFitting:
    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        n = 15
        gt = AnisotropicCloud.create(
            means=np.stack([rng.uniform(-0.6, 0.6, n),
                            rng.uniform(-0.5, 0.5, n),
                            rng.uniform(1.5, 2.8, n)], axis=-1),
            scales=rng.uniform(0.08, 0.3, (n, 3)),
            quaternions=rng.normal(size=(n, 4)),
            opacities=rng.uniform(0.4, 0.9, n),
            colors=rng.uniform(0.1, 0.9, (n, 3)))
        views = make_views(gt, n_views=2, width=32, height=24, aniso=True)
        fitter = SceneFitter(perturbed(gt, sigma=0.03), views,
                             FitConfig(iterations=40, sample_tile=2))
        result = fitter.fit()
        assert np.mean(result.losses[-5:]) < 0.7 * np.mean(result.losses[:5])
        assert isinstance(result.cloud, AnisotropicCloud)
