"""Covisibility keyframe selection and depth-error densification."""

import numpy as np
import pytest

from repro.core import Splatonic
from repro.datasets import make_replica_sequence
from repro.gaussians import Camera, Intrinsics
from repro.datasets.trajectory import look_at
from repro.slam import (
    SPLATAM,
    Keyframe,
    KeyframeBuffer,
    Mapper,
    SLAMSystem,
    view_overlap,
)

BG = np.full(3, 0.05)


class TestViewOverlap:
    def test_full_overlap_same_camera(self):
        intr = Intrinsics.from_fov(32, 24, 70.0)
        cam = Camera(intr)
        rng = np.random.default_rng(0)
        # Points straight ahead, well inside the frustum.
        pts = np.stack([rng.uniform(-0.2, 0.2, 50),
                        rng.uniform(-0.15, 0.15, 50),
                        rng.uniform(1, 3, 50)], axis=-1)
        assert view_overlap(pts, cam) == 1.0

    def test_zero_overlap_opposite_view(self):
        intr = Intrinsics.from_fov(32, 24, 70.0)
        pts = np.array([[0.0, 0.0, 2.0]])
        behind = Camera(intr, look_at(np.zeros(3), np.array([0, 0, -5.0])))
        assert view_overlap(pts, behind) == 0.0

    def test_partial_overlap(self):
        intr = Intrinsics.from_fov(32, 24, 70.0)
        cam = Camera(intr)
        pts = np.array([[0.0, 0.0, 2.0], [50.0, 0.0, 2.0]])
        assert view_overlap(pts, cam) == 0.5

    def test_empty_points(self):
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        assert view_overlap(np.zeros((0, 3)), cam) == 0.0


class TestOverlapSelection:
    def _buffer_with_views(self):
        intr = Intrinsics.from_fov(32, 24, 70.0)
        buf = KeyframeBuffer(keyframe_every=1, window=1)
        depth = np.full((24, 32), 2.0)
        color = np.zeros((24, 32, 3))
        # kf0 looks at +z (same as the current frame), kf1 at -z, kf2 +x.
        poses = [
            look_at(np.zeros(3), np.array([0, 0, 5.0])),
            look_at(np.zeros(3), np.array([0, 0, -5.0])),
            look_at(np.zeros(3), np.array([5.0, 0, 0.2])),
        ]
        for i, pose in enumerate(poses):
            buf.maybe_add(i, pose, color, depth)
        current = Keyframe(3, poses[0], color, depth)
        return buf, intr, current

    def test_prefers_covisible_keyframes(self):
        buf, intr, current = self._buffer_with_views()
        window = buf.select_by_overlap(current, intr,
                                       rng=np.random.default_rng(0))
        indices = [kf.index for kf in window]
        assert 3 in indices, "current frame always included"
        assert 0 in indices, "the same-direction keyframe must rank first"
        assert 1 not in indices, "the opposite-view keyframe must lose"

    def test_falls_back_without_depth(self):
        intr = Intrinsics.from_fov(32, 24, 70.0)
        buf = KeyframeBuffer(keyframe_every=1, window=2)
        buf.maybe_add(0, np.eye(4), np.zeros((24, 32, 3)),
                      np.zeros((24, 32)))
        current = Keyframe(1, np.eye(4), np.zeros((24, 32, 3)),
                           np.zeros((24, 32)))
        window = buf.select_by_overlap(current, intr)
        assert any(kf.index == 1 for kf in window)

    def test_slam_runs_with_overlap_policy(self):
        seq = make_replica_sequence("room0", n_frames=6, width=40, height=30,
                                    surface_density=8)
        algo = SPLATAM.with_overrides(keyframe_selection="overlap",
                                      tracking_iters=10, mapping_iters=4)
        result = SLAMSystem(algo, mode="sparse").run(seq)
        assert np.isfinite(result.ate().rmse)


class TestDepthErrorDensification:
    def _setup(self):
        seq = make_replica_sequence("room0", n_frames=3, width=40, height=30,
                                    surface_density=8)
        frame = seq[0]
        kf = Keyframe(0, frame.gt_pose_c2w, frame.color, frame.depth)
        return seq, kf

    def test_disabled_by_default(self):
        seq, kf = self._setup()
        mapper = Mapper(SPLATAM, seq.intrinsics, Splatonic(), "sparse", BG)
        gamma = np.zeros(kf.depth.shape)
        bad_depth = kf.depth * 2.0  # large rendered-depth error everywhere
        grown = mapper.densify(seq.gt_cloud, kf, gamma, bad_depth)
        assert len(grown) == len(seq.gt_cloud)

    def test_seeds_on_depth_error(self):
        seq, kf = self._setup()
        algo = SPLATAM.with_overrides(densify_depth_error_factor=5.0)
        mapper = Mapper(algo, seq.intrinsics, Splatonic(), "sparse", BG)
        gamma = np.zeros(kf.depth.shape)
        rendered = kf.depth.copy()
        rendered[:5, :5] += 3.0  # a corner with gross depth error
        grown = mapper.densify(seq.gt_cloud, kf, gamma, rendered)
        assert len(grown) > len(seq.gt_cloud)
        assert len(grown) <= len(seq.gt_cloud) + 25 + 1

    def test_no_seed_when_error_uniform(self):
        """Uniform error has no outliers above factor x median."""
        seq, kf = self._setup()
        algo = SPLATAM.with_overrides(densify_depth_error_factor=5.0)
        mapper = Mapper(algo, seq.intrinsics, Splatonic(), "sparse", BG)
        gamma = np.zeros(kf.depth.shape)
        rendered = kf.depth + 0.05
        grown = mapper.densify(seq.gt_cloud, kf, gamma, rendered)
        assert len(grown) == len(seq.gt_cloud)
