"""Metrics: Umeyama alignment, ATE invariances, PSNR/SSIM/depth-L1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import random_rotation, se3_exp
from repro.metrics import ate_rmse, depth_l1, psnr, ssim, umeyama_alignment


def random_trajectory(n=20, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(0, 0.1, (n, 3)), axis=0)


class TestUmeyama:
    def test_recovers_known_rigid_transform(self):
        rng = np.random.default_rng(0)
        src = random_trajectory()
        R_true = random_rotation(rng)
        t_true = rng.normal(size=3)
        dst = src @ R_true.T + t_true
        R, t, s = umeyama_alignment(src, dst)
        assert np.allclose(R, R_true, atol=1e-9)
        assert np.allclose(t, t_true, atol=1e-9)
        assert s == 1.0

    def test_recovers_scale(self):
        rng = np.random.default_rng(1)
        src = random_trajectory(seed=1)
        dst = 2.5 * src @ random_rotation(rng).T + rng.normal(size=3)
        _, _, s = umeyama_alignment(src, dst, with_scale=True)
        assert np.isclose(s, 2.5, atol=1e-9)

    def test_reflection_guard(self):
        """Alignment must return a proper rotation even for degenerate fits."""
        src = random_trajectory(seed=2)
        dst = src * np.array([1.0, 1.0, -1.0])  # mirrored
        R, _, _ = umeyama_alignment(src, dst)
        assert np.isclose(np.linalg.det(R), 1.0)

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((5, 3)), np.zeros((6, 3)))


class TestATE:
    def test_zero_for_identical(self):
        traj = random_trajectory()
        result = ate_rmse(traj, traj)
        assert result.rmse < 1e-12

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_invariant_to_rigid_transform(self, seed):
        """Property: ATE is invariant to rigid transforms of the estimate."""
        rng = np.random.default_rng(seed)
        gt = random_trajectory(seed=seed)
        est = gt + rng.normal(0, 0.02, gt.shape)
        base = ate_rmse(est, gt).rmse
        R = random_rotation(rng)
        t = rng.normal(size=3)
        moved = est @ R.T + t
        assert np.isclose(ate_rmse(moved, gt).rmse, base, atol=1e-8)

    def test_statistics_ordering(self):
        rng = np.random.default_rng(3)
        gt = random_trajectory(seed=3)
        est = gt + rng.normal(0, 0.05, gt.shape)
        r = ate_rmse(est, gt)
        assert r.median <= r.mean + 1e-12 or r.median <= r.max
        assert r.rmse >= r.mean - 1e-12  # RMSE >= mean for any distribution
        assert r.max >= r.median

    def test_accepts_pose_arrays(self):
        poses = np.stack([se3_exp(np.array([i * 0.1, 0, 0, 0, 0, 0]))
                          for i in range(5)])
        r = ate_rmse(poses, poses)
        assert r.rmse < 1e-12

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ate_rmse(np.zeros((5, 2)), np.zeros((5, 2)))

    def test_no_align_penalizes_offset(self):
        gt = random_trajectory(seed=4)
        shifted = gt + np.array([1.0, 0, 0])
        assert ate_rmse(shifted, gt, align=False).rmse > 0.99
        assert ate_rmse(shifted, gt, align=True).rmse < 1e-9


class TestPSNR:
    def test_infinite_for_identical(self):
        img = np.random.default_rng(0).uniform(0, 1, (8, 8, 3))
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        assert np.isclose(psnr(a, b), 20.0)  # 10*log10(1/0.01)

    def test_mask(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[0, 0] = 1.0
        mask = np.ones((4, 4), dtype=bool)
        mask[0, 0] = False
        assert psnr(a, b, mask=mask) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))


class TestSSIM:
    def test_one_for_identical(self):
        img = np.random.default_rng(1).uniform(0, 1, (16, 16))
        assert np.isclose(ssim(img, img), 1.0)

    def test_less_for_noisy(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(0, 1, (16, 16))
        noisy = np.clip(img + rng.normal(0, 0.2, img.shape), 0, 1)
        assert ssim(img, noisy) < 0.99

    def test_multichannel(self):
        img = np.random.default_rng(3).uniform(0, 1, (12, 12, 3))
        assert np.isclose(ssim(img, img), 1.0)

    def test_bounded(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, (16, 16))
        b = rng.uniform(0, 1, (16, 16))
        assert -1.0 <= ssim(a, b) <= 1.0


class TestDepthL1:
    def test_zero_for_identical(self):
        d = np.random.default_rng(5).uniform(0.5, 3, (8, 8))
        assert depth_l1(d, d) == 0.0

    def test_ignores_invalid_reference(self):
        ref = np.ones((4, 4))
        ref[0] = 0.0  # invalid row
        rendered = np.ones((4, 4))
        rendered[0] = 99.0
        assert depth_l1(rendered, ref) == 0.0

    def test_known_value(self):
        ref = np.ones((4, 4))
        rendered = np.full((4, 4), 1.25)
        assert np.isclose(depth_l1(rendered, ref), 0.25)

    def test_all_invalid(self):
        assert depth_l1(np.ones((3, 3)), np.zeros((3, 3))) == 0.0
