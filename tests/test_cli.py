"""CLI: argument parsing and end-to-end subcommand runs."""

import json
import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_slam_defaults(self):
        args = build_parser().parse_args(["slam"])
        assert args.algorithm == "splatam"
        assert args.mode == "sparse"

    def test_render_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out == "trace.json"
        assert args.frames == 4

    def test_global_verbosity_flags(self):
        args = build_parser().parse_args(["-vv", "info"])
        assert args.verbose == 2 and args.quiet == 0
        args = build_parser().parse_args(["-q", "info"])
        assert args.quiet == 1


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "splatam" in out
        assert "SPLATONIC-HW" in out

    def test_figure_list(self, capsys):
        assert main(["figure", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig22" in out and "area" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_area(self, capsys):
        assert main(["figure", "area"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_render_writes_files(self, tmp_path, capsys):
        out = str(tmp_path / "v.ppm")
        depth = str(tmp_path / "d.pgm")
        code = main(["render", "--out", out, "--depth-out", depth,
                     "--width", "32", "--height", "24"])
        assert code == 0
        assert open(out, "rb").read(2) == b"P6"
        assert open(depth, "rb").read(2) == b"P5"

    def test_render_saved_cloud(self, tmp_path):
        from repro.gaussians import GaussianCloud
        from repro.io import save_cloud
        rng = np.random.default_rng(0)
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(-1, 1, 20),
                            rng.uniform(-1, 1, 20),
                            rng.uniform(1, 4, 20)], axis=-1),
            scales=rng.uniform(0.05, 0.2, 20),
            opacities=rng.uniform(0.3, 0.9, 20),
            colors=rng.uniform(0, 1, (20, 3)))
        cloud_path = str(tmp_path / "c.npz")
        save_cloud(cloud_path, cloud)
        out = str(tmp_path / "v.ppm")
        assert main(["render", "--cloud", cloud_path, "--out", out,
                     "--width", "32", "--height", "24"]) == 0
        assert os.path.exists(out)

    def test_trace_writes_chrome_trace_and_table(self, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        metrics_out = str(tmp_path / "metrics.json")
        code = main(["trace", "--frames", "2", "--width", "32",
                     "--height", "24", "--out", out,
                     "--metrics-out", metrics_out])
        assert code == 0
        events = json.loads(open(out).read())
        assert isinstance(events, list) and events
        for ev in events:
            assert set(ev) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert ev["ph"] == "X"
        names = {ev["name"] for ev in events}
        printed = capsys.readouterr().out
        for stage in ("tracking_fwd", "tracking_bwd", "mapping_fwd",
                      "mapping_bwd"):
            assert stage in names
            assert stage in printed  # the per-stage summary table
        exported = json.loads(open(metrics_out).read())
        assert "tracking_fwd.num_pixels" in exported["counters"]

    def test_quiet_silences_narration(self, tmp_path, capsys):
        out = str(tmp_path / "v.ppm")
        assert main(["-qq", "render", "--out", out, "--width", "32",
                     "--height", "24"]) == 0
        assert "wrote" not in capsys.readouterr().out.lower()

    @pytest.mark.slow
    def test_slam_end_to_end(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        code = main(["slam", "--frames", "5", "--width", "40",
                     "--height", "30", "--tracking-tile", "8",
                     "--out", out_dir])
        assert code == 0
        printed = capsys.readouterr().out
        assert "ATE" in printed and "PSNR" in printed
        for name in ("trajectory_est.txt", "trajectory_gt.txt",
                     "cloud.npz", "final_view.ppm"):
            assert os.path.exists(os.path.join(out_dir, name)), name
