"""CLI: argument parsing and end-to-end subcommand runs."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_slam_defaults(self):
        args = build_parser().parse_args(["slam"])
        assert args.algorithm == "splatam"
        assert args.mode == "sparse"

    def test_render_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "splatam" in out
        assert "SPLATONIC-HW" in out

    def test_figure_list(self, capsys):
        assert main(["figure", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig22" in out and "area" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_area(self, capsys):
        assert main(["figure", "area"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_render_writes_files(self, tmp_path, capsys):
        out = str(tmp_path / "v.ppm")
        depth = str(tmp_path / "d.pgm")
        code = main(["render", "--out", out, "--depth-out", depth,
                     "--width", "32", "--height", "24"])
        assert code == 0
        assert open(out, "rb").read(2) == b"P6"
        assert open(depth, "rb").read(2) == b"P5"

    def test_render_saved_cloud(self, tmp_path):
        from repro.gaussians import GaussianCloud
        from repro.io import save_cloud
        rng = np.random.default_rng(0)
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(-1, 1, 20),
                            rng.uniform(-1, 1, 20),
                            rng.uniform(1, 4, 20)], axis=-1),
            scales=rng.uniform(0.05, 0.2, 20),
            opacities=rng.uniform(0.3, 0.9, 20),
            colors=rng.uniform(0, 1, (20, 3)))
        cloud_path = str(tmp_path / "c.npz")
        save_cloud(cloud_path, cloud)
        out = str(tmp_path / "v.ppm")
        assert main(["render", "--cloud", cloud_path, "--out", out,
                     "--width", "32", "--height", "24"]) == 0
        assert os.path.exists(out)

    @pytest.mark.slow
    def test_slam_end_to_end(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        code = main(["slam", "--frames", "5", "--width", "40",
                     "--height", "30", "--tracking-tile", "8",
                     "--out", out_dir])
        assert code == 0
        printed = capsys.readouterr().out
        assert "ATE" in printed and "PSNR" in printed
        for name in ("trajectory_est.txt", "trajectory_gt.txt",
                     "cloud.npz", "final_view.ppm"):
            assert os.path.exists(os.path.join(out_dir, name)), name
