"""CLI: argument parsing and end-to-end subcommand runs."""

import json
import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_slam_defaults(self):
        args = build_parser().parse_args(["slam"])
        assert args.algorithm == "splatam"
        assert args.mode == "sparse"

    def test_render_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out == "trace.json"
        assert args.frames == 4

    def test_global_verbosity_flags(self):
        args = build_parser().parse_args(["-vv", "info"])
        assert args.verbose == 2 and args.quiet == 0
        args = build_parser().parse_args(["-q", "info"])
        assert args.quiet == 1

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_run_defaults(self):
        args = build_parser().parse_args(["bench", "run"])
        assert args.bench_command == "run"
        assert args.size == "small"
        assert args.reps == 3
        assert args.out == "BENCH_trajectory.json"

    def test_bench_compare_defaults(self):
        args = build_parser().parse_args(["bench", "compare"])
        assert args.baseline == "BENCH_baseline.json"
        assert args.current == "BENCH_trajectory.json"
        assert not args.counters_only

    def test_bench_attrib_trace_out_does_not_shadow_global_trace(self):
        args = build_parser().parse_args(
            ["bench", "attrib", "--trace-out", "units.json"])
        assert args.unit_trace_out == "units.json"
        assert args.trace_out is None  # the global --trace flag


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "splatam" in out
        assert "SPLATONIC-HW" in out

    def test_figure_list(self, capsys):
        assert main(["figure", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig22" in out and "area" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_area(self, capsys):
        assert main(["figure", "area"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_render_writes_files(self, tmp_path, capsys):
        out = str(tmp_path / "v.ppm")
        depth = str(tmp_path / "d.pgm")
        code = main(["render", "--out", out, "--depth-out", depth,
                     "--width", "32", "--height", "24"])
        assert code == 0
        assert open(out, "rb").read(2) == b"P6"
        assert open(depth, "rb").read(2) == b"P5"

    def test_render_saved_cloud(self, tmp_path):
        from repro.gaussians import GaussianCloud
        from repro.io import save_cloud
        rng = np.random.default_rng(0)
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(-1, 1, 20),
                            rng.uniform(-1, 1, 20),
                            rng.uniform(1, 4, 20)], axis=-1),
            scales=rng.uniform(0.05, 0.2, 20),
            opacities=rng.uniform(0.3, 0.9, 20),
            colors=rng.uniform(0, 1, (20, 3)))
        cloud_path = str(tmp_path / "c.npz")
        save_cloud(cloud_path, cloud)
        out = str(tmp_path / "v.ppm")
        assert main(["render", "--cloud", cloud_path, "--out", out,
                     "--width", "32", "--height", "24"]) == 0
        assert os.path.exists(out)

    def test_trace_writes_chrome_trace_and_table(self, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        metrics_out = str(tmp_path / "metrics.json")
        code = main(["trace", "--frames", "2", "--width", "32",
                     "--height", "24", "--out", out,
                     "--metrics-out", metrics_out])
        assert code == 0
        events = json.loads(open(out).read())
        assert isinstance(events, list) and events
        for ev in events:
            assert set(ev) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert ev["ph"] == "X"
        names = {ev["name"] for ev in events}
        printed = capsys.readouterr().out
        for stage in ("tracking_fwd", "tracking_bwd", "mapping_fwd",
                      "mapping_bwd"):
            assert stage in names
            assert stage in printed  # the per-stage summary table
        exported = json.loads(open(metrics_out).read())
        assert "tracking_fwd.num_pixels" in exported["counters"]

    def test_trace_json_mode_prints_parseable_payload(self, tmp_path,
                                                      capsys):
        out = str(tmp_path / "trace.json")
        code = main(["trace", "--frames", "2", "--width", "32",
                     "--height", "24", "--out", out, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["frames"] == 2
        assert payload["trace_events"] > 0
        spans = {row["span"] for row in payload["stages"]}
        assert "tracking_fwd" in spans
        # Key-sorted canonical output for stable diffs.
        assert (json.dumps(payload, indent=1, sort_keys=True)
                == json.dumps(payload, indent=1))

    def test_quiet_silences_narration(self, tmp_path, capsys):
        out = str(tmp_path / "v.ppm")
        assert main(["-qq", "render", "--out", out, "--width", "32",
                     "--height", "24"]) == 0
        assert "wrote" not in capsys.readouterr().out.lower()

class TestBenchCommands:
    """End-to-end `repro bench run|compare|attrib` flows (tiny suite)."""

    def test_run_compare_and_injected_regression(self, tmp_path, capsys):
        traj = str(tmp_path / "traj.json")
        # Keep the CLI round-trip fast: one scenario, one repetition.
        code = main(["-q", "bench", "run", "--size", "tiny", "--reps", "1",
                     "--scenarios", "hw_units", "--out", traj])
        assert code == 0
        doc = json.loads(open(traj).read())
        assert doc["schema_version"] == 1
        assert "hw_units" in doc["scenarios"]
        capsys.readouterr()

        # Clean self-comparison gates green ...
        assert main(["-q", "bench", "compare", "--baseline", traj,
                     "--current", traj]) == 0
        assert "PASS" in capsys.readouterr().out

        # ... an injected counter regression gates red with attribution.
        doc["scenarios"]["hw_units"]["counters"]["sorter.keys"] += 1
        bad = str(tmp_path / "bad.json")
        json.dump(doc, open(bad, "w"))
        report_out = str(tmp_path / "report.json")
        code = main(["-q", "bench", "compare", "--baseline", traj,
                     "--current", bad, "--counters-only",
                     "--json-out", report_out])
        assert code == 1
        printed = capsys.readouterr().out
        assert "FAIL" in printed and "sorter.keys" in printed
        report = json.loads(open(report_out).read())
        assert report["passed"] is False

    def test_compare_missing_baseline_exits_2(self, tmp_path, capsys):
        code = main(["-q", "bench", "compare",
                     "--baseline", str(tmp_path / "missing.json"),
                     "--current", str(tmp_path / "also_missing.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().out

    def test_bench_run_unknown_size_errors(self):
        with pytest.raises(ValueError, match="unknown size"):
            main(["-q", "bench", "run", "--size", "galactic"])

    def test_attrib_prints_table_and_writes_exports(self, tmp_path, capsys):
        out = str(tmp_path / "attrib.json")
        units = str(tmp_path / "units.json")
        code = main(["-q", "bench", "attrib", "--scenario", "tracking",
                     "--size", "tiny", "--out", out, "--trace-out", units])
        assert code == 0
        printed = capsys.readouterr().out
        assert "cycle attribution" in printed
        assert "<-- bottleneck" in printed
        assert "measured wall time" in printed
        doc = json.loads(open(out).read())
        assert doc["bottlenecks"]["forward"]
        events = json.loads(open(units).read())
        assert {e["ph"] for e in events} == {"M", "X"}


class TestSlamEndToEnd:
    @pytest.mark.slow
    def test_slam_end_to_end(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        code = main(["slam", "--frames", "5", "--width", "40",
                     "--height", "30", "--tracking-tile", "8",
                     "--out", out_dir])
        assert code == 0
        printed = capsys.readouterr().out
        assert "ATE" in printed and "PSNR" in printed
        for name in ("trajectory_est.txt", "trajectory_gt.txt",
                     "cloud.npz", "final_view.ppm"):
            assert os.path.exists(os.path.join(out_dir, name)), name


class TestReportParser:
    def test_defaults(self):
        args = build_parser().parse_args(["report", "run.jsonl"])
        assert args.records == ["run.jsonl"]
        assert not args.diff
        assert args.format == "markdown"
        assert args.out is None

    def test_diff_takes_two_records(self):
        args = build_parser().parse_args(
            ["report", "--diff", "a.jsonl", "b.jsonl"])
        assert args.diff and args.records == ["a.jsonl", "b.jsonl"]

    def test_requires_a_record(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_slam_flight_record_flags(self):
        args = build_parser().parse_args(
            ["slam", "--flight-record", "run.jsonl", "--on-alert", "raise"])
        assert args.flight_record == "run.jsonl"
        assert args.on_alert == "raise"
        args = build_parser().parse_args(["slam"])
        assert args.flight_record is None and args.on_alert == "warn"


class TestReportCommand:
    @pytest.fixture(scope="class")
    def record_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-flight") / "run.jsonl")
        code = main(["-q", "slam", "--frames", "3", "--width", "24",
                     "--height", "18", "--tracking-tile", "8",
                     "--flight-record", path])
        assert code == 0
        return path

    def test_report_prints_markdown(self, record_path, capsys):
        assert main(["report", record_path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# flight report")
        assert "per-frame detail" in out

    def test_report_html_to_file(self, record_path, tmp_path):
        out = str(tmp_path / "report.html")
        assert main(["-q", "report", record_path,
                     "--format", "html", "--out", out]) == 0
        with open(out) as f:
            text = f.read()
        assert text.startswith("<!DOCTYPE html>")

    def test_self_diff_is_clean_and_exits_zero(self, record_path, capsys):
        assert main(["report", "--diff", record_path, record_path]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_diff_of_different_runs_exits_one(self, record_path, tmp_path,
                                              capsys):
        other = str(tmp_path / "other.jsonl")
        code = main(["-q", "slam", "--frames", "3", "--width", "24",
                     "--height", "18", "--tracking-tile", "8",
                     "--seed", "7", "--flight-record", other])
        assert code == 0
        capsys.readouterr()
        assert main(["report", "--diff", record_path, other]) == 1
        assert "first divergence at frame" in capsys.readouterr().out

    def test_diff_requires_exactly_two(self, record_path):
        with pytest.raises(SystemExit):
            main(["report", "--diff", record_path])

    def test_single_report_rejects_two_records(self, record_path):
        with pytest.raises(SystemExit):
            main(["report", record_path, record_path])


class TestHelpSmoke:
    """Every subcommand (and bench sub-subcommand) has working --help."""

    COMMANDS = [
        [],
        ["slam"],
        ["render"],
        ["figure"],
        ["trace"],
        ["bench"],
        ["bench", "run"],
        ["bench", "compare"],
        ["bench", "attrib"],
        ["report"],
        ["atlas"],
        ["top"],
        ["info"],
        ["runs"],
        ["runs", "list"],
        ["runs", "show"],
        ["runs", "ingest"],
        ["runs", "trend"],
        ["runs", "triage"],
        ["runs", "prune"],
    ]

    @pytest.mark.parametrize("command", COMMANDS,
                             ids=[" ".join(c) or "root" for c in COMMANDS])
    def test_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([*command, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "usage:" in out

    def test_root_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for name in ("slam", "render", "figure", "trace", "bench",
                     "report", "atlas", "top", "info", "runs"):
            assert name in out

    def test_version_prints_schema_inventory(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert "artifact schema versions:" in out
        for artifact in ("flight record", "bench trajectory",
                         "sparsity atlas", "telemetry stream",
                         "span profile", "run registry"):
            assert artifact in out


class TestRegistryFlags:
    def test_slam_registry_defaults_off(self):
        args = build_parser().parse_args(["slam"])
        assert args.registry is None

    def test_slam_registry_bare_uses_default_root(self):
        from repro.obs.runsdb import DEFAULT_REGISTRY_ROOT
        args = build_parser().parse_args(["slam", "--registry"])
        assert args.registry == DEFAULT_REGISTRY_ROOT

    def test_slam_registry_explicit_dir(self):
        args = build_parser().parse_args(["slam", "--registry", "/tmp/reg"])
        assert args.registry == "/tmp/reg"

    def test_runs_trend_parses_metric_globs(self):
        args = build_parser().parse_args(
            ["runs", "trend", "--metric", "slam.wall.*,slam.ate.*"])
        assert args.metric == "slam.wall.*,slam.ate.*"

    def test_runs_triage_defaults_to_last_two(self):
        args = build_parser().parse_args(["runs", "triage"])
        assert args.base == "-2" and args.current == "-1"

    def test_runs_prune_requires_keep(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs", "prune"])


class TestRunsEndToEnd:
    """`repro slam --registry` twice, then the whole `repro runs`
    surface against the resulting registry."""

    @pytest.fixture(scope="class")
    def registry_dir(self, tmp_path_factory):
        reg = str(tmp_path_factory.mktemp("cli-runs") / "reg")
        for tile in ("8", "4"):
            code = main(["-q", "slam", "--frames", "4", "--width", "32",
                         "--height", "24", "--tracking-tile", tile,
                         "--registry", reg])
            assert code == 0
        return reg

    def test_list_shows_both_runs_and_stats(self, registry_dir, capsys):
        assert main(["runs", "list", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("slam") >= 2
        assert "2 runs" in out

    def test_list_json_is_parseable(self, registry_dir, capsys):
        assert main(["runs", "list", "--registry", registry_dir,
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert [r["seq"] for r in rows] == [1, 2]

    def test_show_renders_metrics(self, registry_dir, capsys):
        assert main(["runs", "show", "-1",
                     "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "slam.ate.rmse_m" in out
        assert "tracking_tile" in out

    def test_trend_detects_no_step_on_two_runs(self, registry_dir, tmp_path,
                                               capsys):
        json_out = str(tmp_path / "trend.json")
        assert main(["runs", "trend", "--registry", registry_dir,
                     "--json-out", json_out]) == 0
        assert "slam.wall.mean_s" in capsys.readouterr().out
        doc = json.loads(open(json_out).read())
        assert "slam.wall.mean_s" in doc
        assert len(doc["slam.wall.mean_s"]["series"]) == 2

    def test_triage_names_the_perturbed_stage(self, registry_dir, tmp_path,
                                              capsys):
        json_out = str(tmp_path / "triage.json")
        md_out = str(tmp_path / "triage.md")
        assert main(["runs", "triage", "--registry", registry_dir,
                     "--json-out", json_out, "--out", md_out]) == 0
        capsys.readouterr()
        text = open(md_out).read()
        assert text.startswith("### run triage")
        assert "top culprit: tracking" in text
        doc = json.loads(open(json_out).read())
        assert doc["culprits"][0]["stage"] == "tracking"
        assert "tracking_tile" in {d["key"] for d in doc["config_delta"]}

    def test_triage_prints_to_stdout_without_out(self, registry_dir, capsys):
        assert main(["runs", "triage", "--registry", registry_dir]) == 0
        assert "top culprit: tracking" in capsys.readouterr().out

    def test_unknown_run_show_exits_nonzero(self, registry_dir):
        with pytest.raises(SystemExit):
            main(["runs", "show", "zzz", "--registry", registry_dir])

    def test_prune_runs_last(self, registry_dir, capsys):
        # Keep both runs so earlier tests' registry stays intact; this
        # class is ordered, prune is the final surface exercised.
        assert main(["runs", "prune", "--keep", "2",
                     "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "2 runs kept" in out


class TestTelemetryFlags:
    def test_slam_telemetry_defaults_off(self):
        args = build_parser().parse_args(["slam"])
        assert args.serve_telemetry is None
        assert args.telemetry_stream is None
        assert args.telemetry_host == "127.0.0.1"
        assert args.telemetry_linger == 0.0

    def test_serve_telemetry_bare_means_default_port(self):
        args = build_parser().parse_args(["slam", "--serve-telemetry"])
        assert args.serve_telemetry == -1    # sentinel: DEFAULT_PORT

    def test_serve_telemetry_explicit_port(self):
        args = build_parser().parse_args(
            ["slam", "--serve-telemetry", "0", "--telemetry-host", "0.0.0.0"])
        assert args.serve_telemetry == 0
        assert args.telemetry_host == "0.0.0.0"

    def test_telemetry_stream_target(self):
        args = build_parser().parse_args(
            ["slam", "--telemetry-stream", "tcp://localhost:5005"])
        assert args.telemetry_stream == "tcp://localhost:5005"

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.endpoint is None and args.from_flight is None
        assert args.once is False
        assert args.interval == 0.5
        assert args.width == 100
        assert args.no_color is False

    def test_top_flags(self):
        args = build_parser().parse_args(
            ["top", "--endpoint", "localhost:9464", "--once", "--no-color",
             "--interval", "0.1", "--width", "72"])
        assert args.endpoint == "localhost:9464"
        assert args.once and args.no_color
        assert args.interval == 0.1 and args.width == 72


class TestSlamTelemetryEndToEnd:
    def test_serve_and_stream_during_run(self, tmp_path):
        """`repro slam --serve-telemetry 0 --telemetry-stream FILE`
        streams the whole run as JSONL and leaves the bus disabled (and
        subscriber-free) afterwards."""
        from repro.obs.telemetry import bus

        stream = str(tmp_path / "stream.jsonl")
        code = main(["-q", "slam", "--frames", "3", "--width", "24",
                     "--height", "18", "--tracking-tile", "8",
                     "--serve-telemetry", "0",
                     "--telemetry-stream", stream])
        assert code == 0
        assert not bus.enabled           # CLI tears the bus down
        assert bus.subscriber_count == 0
        lines = [json.loads(l) for l in open(stream).read().splitlines()]
        kinds = [l["kind"] for l in lines]
        assert kinds[0] == "header"
        # The run stream ends with the summary, then the CLI publishes
        # one final post-run metrics snapshot (stage stats ingested).
        assert "summary" in kinds
        assert kinds[-1] == "metrics"
        assert kinds.count("frame") == 3
        assert kinds.count("metrics") >= 3

    def test_stream_alone_enables_the_bus(self, tmp_path):
        from repro.obs.telemetry import bus

        stream = str(tmp_path / "s.jsonl")
        assert main(["-q", "slam", "--frames", "3", "--width", "24",
                     "--height", "18", "--tracking-tile", "8",
                     "--telemetry-stream", stream]) == 0
        assert not bus.enabled
        assert open(stream).read().count('"kind": "frame"') == 3
