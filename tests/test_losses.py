"""RGB-D loss: values, masking, and analytic gradients."""

import numpy as np
import pytest

from repro.slam import LossConfig, rgbd_loss


def make_inputs(k=12, seed=0):
    rng = np.random.default_rng(seed)
    return dict(
        rendered_color=rng.uniform(0, 1, (k, 3)),
        rendered_depth=rng.uniform(0.5, 3, k),
        rendered_silhouette=rng.uniform(0.99, 1.0, k),
        ref_color=rng.uniform(0, 1, (k, 3)),
        ref_depth=rng.uniform(0.5, 3, k),
    )


class TestLossValue:
    def test_zero_at_perfect_render(self):
        inp = make_inputs()
        out = rgbd_loss(inp["ref_color"], inp["ref_depth"],
                        inp["rendered_silhouette"], inp["ref_color"],
                        inp["ref_depth"], LossConfig(), tracking=True)
        assert out.loss == 0.0

    def test_positive_otherwise(self):
        inp = make_inputs()
        out = rgbd_loss(**inp, config=LossConfig(), tracking=True)
        assert out.loss > 0.0

    def test_weights_scale_components(self):
        inp = make_inputs()
        only_color = rgbd_loss(**inp, config=LossConfig(
            color_weight=1.0, depth_weight=0.0), tracking=True)
        only_depth = rgbd_loss(**inp, config=LossConfig(
            color_weight=0.0, depth_weight=1.0), tracking=True)
        both = rgbd_loss(**inp, config=LossConfig(
            color_weight=1.0, depth_weight=1.0), tracking=True)
        assert np.isclose(both.loss, only_color.loss + only_depth.loss)

    def test_normalized_by_valid_count(self):
        """Doubling the number of identical pixels leaves the loss fixed."""
        inp = make_inputs(k=8)
        doubled = {k: np.concatenate([v, v]) for k, v in inp.items()}
        a = rgbd_loss(**inp, config=LossConfig(), tracking=False)
        b = rgbd_loss(**doubled, config=LossConfig(), tracking=False)
        assert np.isclose(a.loss, b.loss)


class TestMasking:
    def test_silhouette_mask_in_tracking(self):
        inp = make_inputs()
        inp["rendered_silhouette"] = np.full(12, 0.5)  # poorly observed
        out = rgbd_loss(**inp, config=LossConfig(silhouette_threshold=0.99),
                        tracking=True)
        assert out.num_valid == 0
        assert out.loss == 0.0
        assert np.allclose(out.d_color, 0)

    def test_no_silhouette_mask_in_mapping(self):
        inp = make_inputs()
        inp["rendered_silhouette"] = np.full(12, 0.5)
        out = rgbd_loss(**inp, config=LossConfig(), tracking=False)
        assert out.num_valid == 12

    def test_invalid_depth_masked(self):
        inp = make_inputs()
        inp["ref_depth"] = inp["ref_depth"].copy()
        inp["ref_depth"][:6] = 0.0
        out = rgbd_loss(**inp, config=LossConfig(), tracking=False)
        assert out.num_valid == 6
        assert np.allclose(out.d_depth[:6], 0)


class TestGradients:
    @pytest.mark.parametrize("tracking", [True, False])
    @pytest.mark.parametrize("delta", [0.0, 0.05])
    def test_matches_numerical(self, tracking, delta):
        cfg = LossConfig(color_weight=0.7, depth_weight=0.9,
                         silhouette_weight=0.2, huber_delta=delta)
        inp = make_inputs(seed=3)
        out = rgbd_loss(**inp, config=cfg, tracking=tracking)
        eps = 1e-7
        rng = np.random.default_rng(0)

        def loss_of(**kw):
            merged = dict(inp)
            merged.update(kw)
            return rgbd_loss(**merged, config=cfg, tracking=tracking).loss

        for _ in range(10):
            i = rng.integers(12)
            c = rng.integers(3)
            cp = inp["rendered_color"].copy()
            cp[i, c] += eps
            cm = inp["rendered_color"].copy()
            cm[i, c] -= eps
            num = (loss_of(rendered_color=cp)
                   - loss_of(rendered_color=cm)) / (2 * eps)
            assert np.isclose(num, out.d_color[i, c], atol=1e-5)

            dp = inp["rendered_depth"].copy()
            dp[i] += eps
            dm = inp["rendered_depth"].copy()
            dm[i] -= eps
            num = (loss_of(rendered_depth=dp)
                   - loss_of(rendered_depth=dm)) / (2 * eps)
            assert np.isclose(num, out.d_depth[i], atol=1e-5)

    def test_silhouette_gradient_only_in_mapping(self):
        cfg = LossConfig(silhouette_weight=0.5)
        inp = make_inputs(seed=4)
        track = rgbd_loss(**inp, config=cfg, tracking=True)
        mapping = rgbd_loss(**inp, config=cfg, tracking=False)
        assert np.allclose(track.d_silhouette, 0)
        assert not np.allclose(mapping.d_silhouette, 0)

    def test_huber_bounded_gradient(self):
        cfg = LossConfig(huber_delta=0.1)
        inp = make_inputs(seed=5)
        out = rgbd_loss(**inp, config=cfg, tracking=False)
        # L1/Huber gradients are bounded by weight / num_valid.
        assert np.all(np.abs(out.d_depth) <= cfg.depth_weight / out.num_valid
                      + 1e-12)
