"""Metrics-registry bridges against hand-built result objects."""

import numpy as np
import pytest

from repro.hw import AggregationTrace, DramStats, StageTimes
from repro.obs import (
    MetricsRegistry,
    ingest_aggregation_trace,
    ingest_dram_stats,
    ingest_pipeline_stats,
    ingest_stage_times,
)
from repro.render import PipelineStats


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestIngestPipelineStats:
    def make_stats(self):
        return PipelineStats(
            pipeline="pixel", image_width=64, image_height=48,
            num_gaussians=500, num_projected=400, num_pixels=100,
            num_candidate_pairs=1000, num_contrib_pairs=250,
            num_sort_keys=800, num_alpha_checks=1000, num_atomic_adds=750,
            per_pixel_contribs=[2, 3] * 50)

    def test_num_counters_accumulate(self, registry):
        stats = self.make_stats()
        ingest_pipeline_stats("tracking_fwd", stats, registry=registry)
        counters = registry.counters
        assert counters["tracking_fwd.num_contrib_pairs"] == 250
        assert counters["tracking_fwd.num_sort_keys"] == 800
        # A second ingest adds (counters are monotonic accumulators).
        ingest_pipeline_stats("tracking_fwd", stats, registry=registry)
        assert registry.counters["tracking_fwd.num_contrib_pairs"] == 500

    def test_non_num_fields_are_not_counters(self, registry):
        ingest_pipeline_stats("s", self.make_stats(), registry=registry)
        assert "s.image_width" not in registry.counters
        assert "s.pipeline" not in registry.counters

    def test_derived_rates_land_as_gauges(self, registry):
        ingest_pipeline_stats("s", self.make_stats(), registry=registry)
        gauges = registry.gauges
        assert gauges["s.alpha_pass_rate"] == pytest.approx(0.25)
        assert gauges["s.mean_contribs_per_pixel"] == pytest.approx(2.5)
        assert 0.0 < gauges["s.warp_utilization"] <= 1.0

    def test_empty_stats_ingest_cleanly(self, registry):
        ingest_pipeline_stats("empty", PipelineStats(), registry=registry)
        assert registry.gauges["empty.alpha_pass_rate"] == 0.0


class TestIngestStageTimes:
    def test_stage_and_aggregate_gauges(self, registry):
        times = StageTimes(projection=0.1, sorting=0.2, rasterization=0.3,
                           reverse_rasterization=0.4, aggregation=0.5,
                           reprojection=0.6, launch=0.05, overhead=0.01)
        ingest_stage_times("gpu.dense", times, registry=registry)
        gauges = registry.gauges
        assert gauges["gpu.dense.projection_s"] == pytest.approx(0.1)
        assert gauges["gpu.dense.aggregation_s"] == pytest.approx(0.5)
        assert gauges["gpu.dense.forward_s"] == pytest.approx(0.6)
        assert gauges["gpu.dense.backward_s"] == pytest.approx(1.5)
        assert gauges["gpu.dense.total_s"] == pytest.approx(2.16)


class TestIngestAggregationTrace:
    def test_counters_and_gauges(self, registry):
        agg = AggregationTrace(cycles=1000.0, stall_cycles=100.0, tuples=400,
                               unique_accumulations=300, cache_misses=50,
                               cache_hits=350, dram_bytes=3200.0)
        ingest_aggregation_trace("agg", agg, registry=registry)
        assert registry.counters["agg.tuples"] == 400
        assert registry.counters["agg.cache_hits"] == 350
        assert registry.counters["agg.cache_misses"] == 50
        gauges = registry.gauges
        assert gauges["agg.cycles"] == 1000.0
        assert gauges["agg.hit_rate"] == pytest.approx(0.875)
        assert gauges["agg.cycles_per_tuple"] == pytest.approx(2.5)
        assert gauges["agg.dram_bytes"] == 3200.0

    def test_real_unit_output_ingests(self, registry):
        from repro.hw import AggregationUnit

        ids = [np.array([0, 1, 2]), np.array([1, 2, 3])]
        trace = AggregationUnit().simulate(ids)
        ingest_aggregation_trace("agg", trace, registry=registry)
        assert registry.counters["agg.tuples"] == 6


class TestIngestDramStats:
    def test_counters_and_gauges(self, registry):
        stats = DramStats(hits=90, misses=10, cycles=640.0, energy_pj=123.0)
        ingest_dram_stats("dram", stats, registry=registry)
        assert registry.counters["dram.hits"] == 90
        assert registry.counters["dram.misses"] == 10
        gauges = registry.gauges
        assert gauges["dram.hit_rate"] == pytest.approx(0.9)
        assert gauges["dram.cycles"] == 640.0
        assert gauges["dram.energy_pj"] == 123.0


class TestExportDeterminism:
    def test_export_is_sorted_and_plain(self, registry):
        ingest_pipeline_stats("b_stage", PipelineStats(num_projected=3),
                              registry=registry)
        ingest_pipeline_stats("a_stage", PipelineStats(num_projected=2),
                              registry=registry)
        export = registry.export()
        keys = list(export["counters"])
        assert keys == sorted(keys)
        assert all(isinstance(v, (int, float))
                   for v in export["counters"].values())
